// Workloads for the run-time manager: applications as sequences of
// functions sharing the FPGA in the spatial and temporal domains (Fig. 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relogic/common/rng.hpp"
#include "relogic/common/time.hpp"
#include "relogic/fabric/cell.hpp"

namespace relogic::sched {

/// One function to be configured and executed on the fabric.
struct FunctionSpec {
  std::string name;
  int height = 1;  ///< CLB rows
  int width = 1;   ///< CLB cols
  /// Execution time once running.
  SimTime duration = SimTime::ms(1);
  /// Storage style — determines relocation cost if the manager moves it.
  fabric::RegMode reg = fabric::RegMode::kFF;
  bool gated_clock = false;

  int clbs() const { return height * width; }
  int cells() const { return clbs() * 4; }
};

/// An application: functions executed in sequence (possibly overlapping by
/// `parallelism` — the number of its functions that may run concurrently).
struct AppSpec {
  std::string name;
  std::vector<FunctionSpec> functions;
  SimTime start = SimTime::zero();
};

/// One-shot task arrivals (for the defragmentation experiments).
struct TaskArrival {
  FunctionSpec fn;
  SimTime arrival = SimTime::zero();
};

/// The Fig. 1 scenario: three applications (A: 2 functions, B: 2, C: 4)
/// sharing the device, with function C2 needing a rearrangement.
std::vector<AppSpec> fig1_applications(int scale_clbs = 6);

/// Random on-line task set: Poisson arrivals, geometric-ish sizes and
/// exponential durations. Deterministic by seed.
struct RandomTaskParams {
  int task_count = 200;
  double mean_interarrival_ms = 2.0;
  int min_side = 2;
  int max_side = 10;
  double mean_duration_ms = 20.0;
  double gated_fraction = 0.5;
  std::uint64_t seed = 1;
};
std::vector<TaskArrival> random_tasks(const RandomTaskParams& params);

/// Shape of the arrival process the WorkloadGenerator samples.
enum class ArrivalPattern {
  kPoisson,    ///< homogeneous Poisson (exponential interarrivals)
  kBursty,     ///< on/off: dense bursts separated by idle gaps
  kDiurnal,    ///< sinusoidal rate wave (a scaled-down day/night cycle)
  kHeavyTail,  ///< Poisson arrivals, bounded-Pareto (heavy-tailed) durations
};

std::string to_string(ArrivalPattern p);
std::optional<ArrivalPattern> parse_arrival_pattern(const std::string& name);

struct WorkloadParams {
  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  int task_count = 200;
  /// Long-run mean interarrival; every pattern is normalised so the
  /// offered load matches Poisson at the same mean.
  double mean_interarrival_ms = 2.0;
  int min_side = 2;
  int max_side = 10;
  double mean_duration_ms = 20.0;
  double gated_fraction = 0.5;
  std::uint64_t seed = 1;

  // kBursty: during a burst, arrivals come `burst_rate_boost` times faster
  // than the long-run mean; bursts hold `burst_length` tasks, and the idle
  // gap between bursts restores the long-run mean rate.
  int burst_length = 16;
  double burst_rate_boost = 8.0;

  // kDiurnal: rate(t) = base * (1 + wave_amplitude * sin(2*pi*t/period)),
  // sampled by thinning. Amplitude in [0, 1).
  double wave_period_ms = 400.0;
  double wave_amplitude = 0.8;

  // kHeavyTail: bounded Pareto durations with this shape (alpha <= 2 gives
  // the classic infinite-variance regime) capped at `tail_cap` times the
  // mean so a single task cannot dominate a whole trace.
  double tail_alpha = 1.3;
  double tail_cap = 50.0;
};

/// Deterministic arrival-trace generator: one seed, one byte-identical
/// trace, whatever the pattern. kPoisson with matching parameters produces
/// exactly the random_tasks() stream, so existing experiments keep their
/// seeds.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadParams params);

  const WorkloadParams& params() const { return params_; }

  /// Samples the whole trace (task_count arrivals, nondecreasing times).
  std::vector<TaskArrival> generate();

 private:
  double next_interarrival_ms();
  FunctionSpec next_function(int index);

  WorkloadParams params_;
  Rng rng_;
  int burst_remaining_ = 0;
  double now_ms_ = 0.0;
};

}  // namespace relogic::sched
