#include "relogic/sched/workload.hpp"

#include <cmath>
#include <cstdio>

#include "relogic/common/error.hpp"

namespace relogic::sched {

std::vector<AppSpec> fig1_applications(int scale_clbs) {
  const int s = scale_clbs;
  auto fn = [&](std::string name, int h, int w, double ms) {
    FunctionSpec f;
    f.name = std::move(name);
    f.height = h;
    f.width = w;
    f.duration = SimTime::ps(static_cast<std::int64_t>(ms * 1e9));
    return f;
  };
  std::vector<AppSpec> apps;
  apps.push_back(AppSpec{
      "A", {fn("A1", s, s + 2, 24.0), fn("A2", s, s + 1, 30.0)},
      SimTime::zero()});
  apps.push_back(AppSpec{
      "B", {fn("B1", s + 1, s, 36.0), fn("B2", s - 1, s, 26.0)},
      SimTime::ms(2)});
  apps.push_back(AppSpec{"C",
                         {fn("C1", s - 1, s - 1, 14.0),
                          fn("C2", s + 2, s, 18.0),
                          fn("C3", s - 2, s - 1, 12.0),
                          fn("C4", s, s - 1, 16.0)},
                         SimTime::ms(4)});
  return apps;
}

std::vector<TaskArrival> random_tasks(const RandomTaskParams& p) {
  WorkloadParams wp;
  wp.pattern = ArrivalPattern::kPoisson;
  wp.task_count = p.task_count;
  wp.mean_interarrival_ms = p.mean_interarrival_ms;
  wp.min_side = p.min_side;
  wp.max_side = p.max_side;
  wp.mean_duration_ms = p.mean_duration_ms;
  wp.gated_fraction = p.gated_fraction;
  wp.seed = p.seed;
  return WorkloadGenerator(wp).generate();
}

std::string to_string(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
    case ArrivalPattern::kHeavyTail:
      return "heavy-tail";
  }
  return "?";
}

std::optional<ArrivalPattern> parse_arrival_pattern(const std::string& name) {
  if (name == "poisson") return ArrivalPattern::kPoisson;
  if (name == "bursty") return ArrivalPattern::kBursty;
  if (name == "diurnal") return ArrivalPattern::kDiurnal;
  if (name == "heavy-tail" || name == "heavytail")
    return ArrivalPattern::kHeavyTail;
  return std::nullopt;
}

WorkloadGenerator::WorkloadGenerator(WorkloadParams params)
    : params_(std::move(params)), rng_(params_.seed) {
  RELOGIC_CHECK(params_.task_count >= 1);
  RELOGIC_CHECK(params_.min_side >= 1 && params_.max_side >= params_.min_side);
  RELOGIC_CHECK(params_.mean_interarrival_ms > 0.0);
  RELOGIC_CHECK(params_.mean_duration_ms > 0.0);
  RELOGIC_CHECK(params_.burst_length >= 1 && params_.burst_rate_boost > 1.0);
  RELOGIC_CHECK(params_.wave_period_ms > 0.0);
  RELOGIC_CHECK(params_.wave_amplitude >= 0.0 && params_.wave_amplitude < 1.0);
  RELOGIC_CHECK(params_.tail_alpha > 1.0 && params_.tail_cap > 1.0);
  burst_remaining_ = params_.burst_length;  // traces open with a burst
}

double WorkloadGenerator::next_interarrival_ms() {
  const double mean = params_.mean_interarrival_ms;
  switch (params_.pattern) {
    case ArrivalPattern::kPoisson:
    case ArrivalPattern::kHeavyTail:
      return rng_.next_exponential(mean);
    case ArrivalPattern::kBursty: {
      // Bursts of burst_length tasks at boost x the long-run rate; the idle
      // gap between bursts restores the long-run mean, so total offered
      // load matches Poisson with the same mean_interarrival_ms. The
      // gap-terminating arrival is the burst's first task, so a steady
      // cycle is 1 gap + (L-1) fast interarrivals for L tasks: gap_mean =
      // L*mean - (L-1)*mean/boost keeps the cycle averaging L*mean.
      const int L = params_.burst_length;
      if (burst_remaining_ == 0) {
        burst_remaining_ = L - 1;
        const double gap_mean =
            L * mean - (L - 1) * mean / params_.burst_rate_boost;
        return rng_.next_exponential(gap_mean);
      }
      --burst_remaining_;
      return rng_.next_exponential(mean / params_.burst_rate_boost);
    }
    case ArrivalPattern::kDiurnal: {
      // Non-homogeneous Poisson by thinning: propose at the peak rate,
      // accept with probability rate(t)/peak.
      const double base_rate = 1.0 / mean;
      const double peak = base_rate * (1.0 + params_.wave_amplitude);
      double dt = 0.0;
      for (;;) {
        dt += rng_.next_exponential(1.0 / peak);
        const double phase =
            2.0 * 3.14159265358979323846 * (now_ms_ + dt) /
            params_.wave_period_ms;
        const double rate =
            base_rate * (1.0 + params_.wave_amplitude * std::sin(phase));
        if (rng_.next_double() * peak <= rate) return dt;
      }
    }
  }
  return rng_.next_exponential(mean);
}

FunctionSpec WorkloadGenerator::next_function(int index) {
  FunctionSpec f;
  char name[16];
  std::snprintf(name, sizeof(name), "t%d", index);
  f.name = name;
  f.height = rng_.next_skewed(params_.min_side, params_.max_side);
  f.width = rng_.next_skewed(params_.min_side, params_.max_side);
  double duration_ms;
  if (params_.pattern == ArrivalPattern::kHeavyTail) {
    // Bounded Pareto: x_m / U^(1/alpha), scaled so the untruncated mean is
    // mean_duration_ms, capped at tail_cap x the mean.
    const double alpha = params_.tail_alpha;
    const double xm = params_.mean_duration_ms * (alpha - 1.0) / alpha;
    const double u = 1.0 - rng_.next_double();  // (0, 1]
    duration_ms = std::min(xm / std::pow(u, 1.0 / alpha),
                           params_.tail_cap * params_.mean_duration_ms);
  } else {
    duration_ms = rng_.next_exponential(params_.mean_duration_ms);
  }
  f.duration = SimTime::ps(static_cast<std::int64_t>(duration_ms * 1e9));
  if (f.duration < SimTime::ms(1)) f.duration = SimTime::ms(1);
  f.gated_clock = rng_.next_bool(params_.gated_fraction);
  f.reg = fabric::RegMode::kFF;
  return f;
}

std::vector<TaskArrival> WorkloadGenerator::generate() {
  // Restart the stream: every generate() call yields the same trace.
  rng_ = Rng(params_.seed);
  now_ms_ = 0.0;
  burst_remaining_ = params_.burst_length;
  std::vector<TaskArrival> tasks;
  tasks.reserve(static_cast<std::size_t>(params_.task_count));
  for (int i = 0; i < params_.task_count; ++i) {
    now_ms_ += next_interarrival_ms();
    tasks.push_back(TaskArrival{
        next_function(i),
        SimTime::ps(static_cast<std::int64_t>(now_ms_ * 1e9))});
  }
  return tasks;
}

}  // namespace relogic::sched
