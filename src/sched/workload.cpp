#include "relogic/sched/workload.hpp"

#include "relogic/common/error.hpp"

namespace relogic::sched {

std::vector<AppSpec> fig1_applications(int scale_clbs) {
  const int s = scale_clbs;
  auto fn = [&](std::string name, int h, int w, double ms) {
    FunctionSpec f;
    f.name = std::move(name);
    f.height = h;
    f.width = w;
    f.duration = SimTime::ps(static_cast<std::int64_t>(ms * 1e9));
    return f;
  };
  std::vector<AppSpec> apps;
  apps.push_back(AppSpec{
      "A", {fn("A1", s, s + 2, 24.0), fn("A2", s, s + 1, 30.0)},
      SimTime::zero()});
  apps.push_back(AppSpec{
      "B", {fn("B1", s + 1, s, 36.0), fn("B2", s - 1, s, 26.0)},
      SimTime::ms(2)});
  apps.push_back(AppSpec{"C",
                         {fn("C1", s - 1, s - 1, 14.0),
                          fn("C2", s + 2, s, 18.0),
                          fn("C3", s - 2, s - 1, 12.0),
                          fn("C4", s, s - 1, 16.0)},
                         SimTime::ms(4)});
  return apps;
}

std::vector<TaskArrival> random_tasks(const RandomTaskParams& p) {
  RELOGIC_CHECK(p.task_count >= 1 && p.min_side >= 1 &&
                p.max_side >= p.min_side);
  Rng rng(p.seed);
  std::vector<TaskArrival> tasks;
  tasks.reserve(static_cast<std::size_t>(p.task_count));
  double now_ms = 0.0;
  for (int i = 0; i < p.task_count; ++i) {
    now_ms += rng.next_exponential(p.mean_interarrival_ms);
    FunctionSpec f;
    f.name = "t" + std::to_string(i);
    f.height = rng.next_skewed(p.min_side, p.max_side);
    f.width = rng.next_skewed(p.min_side, p.max_side);
    f.duration = SimTime::ps(static_cast<std::int64_t>(
        rng.next_exponential(p.mean_duration_ms) * 1e9));
    if (f.duration < SimTime::ms(1)) f.duration = SimTime::ms(1);
    f.gated_clock = rng.next_bool(p.gated_fraction);
    f.reg = fabric::RegMode::kFF;
    tasks.push_back(TaskArrival{f, SimTime::ps(static_cast<std::int64_t>(
                                       now_ms * 1e9))});
  }
  return tasks;
}

}  // namespace relogic::sched
