#include "relogic/sim/harness.hpp"

namespace relogic::sim {

using netlist::Producer;
using netlist::SigId;

CircuitHarness::CircuitHarness(FabricSim& sim, const netlist::Netlist& nl,
                               const place::Implementation& impl)
    : sim_(&sim), nl_(&nl), impl_(&impl), golden_(nl) {}

void CircuitHarness::watch_registered_outputs() {
  for (const auto& [name, pad] : impl_->output_pads) {
    const auto sig = nl_->find_output(name);
    if (!sig.has_value()) continue;
    const auto& node = nl_->node(*sig);
    if (node.kind == netlist::OpKind::kDff ||
        node.kind == netlist::OpKind::kLatch) {
      sim_->monitor().watch(pad, impl_->name + "." + name);
    }
  }
}

void CircuitHarness::drive(const std::vector<bool>& inputs) {
  const auto& ins = nl_->inputs();
  RELOGIC_CHECK_MSG(inputs.size() == ins.size(),
                    "stimulus width does not match netlist inputs");
  for (std::size_t i = 0; i < ins.size(); ++i) {
    golden_.set_input(ins[i], inputs[i]);
    // Find the pad carrying this input.
    for (const auto& [sig, pad] : impl_->input_pads) {
      if (sig == ins[i]) {
        sim_->drive_pad(pad, inputs[i]);
        break;
      }
    }
  }
}

CircuitHarness::CycleResult CircuitHarness::compare(const char* when) {
  CycleResult r;
  for (const auto& [name, pad] : impl_->output_pads) {
    const bool want = golden_.output(name);
    const bool got = sim_->pad_value(pad);
    if (want != got) {
      ++r.output_mismatches;
      log_.push_back("cycle " + std::to_string(cycles_) + " (" + when +
                     "): output '" + name + "' fabric=" +
                     std::to_string(got) + " golden=" + std::to_string(want));
    }
  }
  for (SigId s : nl_->state_elements()) {
    const Producer& p = impl_->mapped.producer(s);
    if (p.kind != Producer::Kind::kCellXQ) continue;
    const auto& site = impl_->sites[static_cast<std::size_t>(p.cell)];
    const bool want = golden_.value(s);
    const bool got = sim_->state_of(site.clb, site.cell);
    if (want != got) {
      ++r.state_mismatches;
      log_.push_back("cycle " + std::to_string(cycles_) + " (" + when +
                     "): state '" + nl_->node(s).name + "' fabric=" +
                     std::to_string(got) + " golden=" + std::to_string(want));
    }
  }
  mismatches_ += r.output_mismatches + r.state_mismatches;
  return r;
}

CircuitHarness::CycleResult CircuitHarness::step(
    const std::vector<bool>& inputs) {
  const std::uint8_t domain = impl_->clock_domain;
  const SimTime period = sim_->clock_period(domain);

  // The fabric may have clocked on while a reconfiguration ran (the
  // application never stops); replay those edges into the golden model
  // with the inputs held at their previous values.
  const std::int64_t missed = sim_->edges_seen(domain) - golden_edges_;
  for (std::int64_t i = 0; i < missed; ++i) golden_.clock();
  golden_edges_ += missed;

  drive(inputs);
  golden_.settle();

  // Settle before the edge, cross it, and let clk-to-q + routing settle.
  // Sampling at half a period tolerates the longer paths produced by
  // relocations to distant CLBs while leaving the other half period for
  // the next cycle's inputs to propagate.
  const SimTime edge = sim_->next_edge(domain, sim_->now() + SimTime::ps(1));
  sim_->run_until(edge - SimTime::ps(1));
  sim_->run_until(edge + period / 2);
  golden_.clock();
  golden_edges_ = sim_->edges_seen(domain);

  ++cycles_;
  return compare("post-edge");
}

CircuitHarness::CycleResult CircuitHarness::step_random(Rng& rng) {
  std::vector<bool> inputs;
  inputs.reserve(nl_->inputs().size());
  for (std::size_t i = 0; i < nl_->inputs().size(); ++i)
    inputs.push_back(rng.next_bool());
  return step(inputs);
}

CircuitHarness::CycleResult CircuitHarness::settle_step(
    const std::vector<bool>& inputs) {
  drive(inputs);
  golden_.settle();
  // Generous settle horizon: deep latch pipelines ripple stage by stage.
  sim_->run_until(sim_->now() + SimTime::ns(200));
  ++cycles_;
  return compare("settled");
}

}  // namespace relogic::sim
