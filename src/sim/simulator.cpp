#include "relogic/sim/simulator.hpp"

#include <algorithm>
#include <unordered_set>

#include "relogic/common/logging.hpp"

namespace relogic::sim {

using fabric::NetId;
using fabric::NodeId;
using fabric::NodeKind;

FabricSim::FabricSim(fabric::Fabric& fabric, const fabric::DelayModel& dm)
    : fabric_(&fabric), dm_(&dm) {
  const auto& geom = fabric_->geometry();
  const std::size_t sites =
      static_cast<std::size_t>(geom.clb_count()) * geom.cells_per_clb;
  pin_val_.assign(sites, {false, false, false, false, false, false});
  x_val_.assign(sites, false);
  q_val_.assign(sites, false);

  fabric_->add_listener(this);

  // Adopt whatever is already configured.
  for (int r = 0; r < geom.clb_rows; ++r) {
    for (int c = 0; c < geom.clb_cols; ++c) {
      const ClbCoord clb{r, c};
      for (int k = 0; k < geom.cells_per_clb; ++k) {
        const auto& cfg = fabric_->cell(clb, k);
        if (!cfg.used) continue;
        const int site = site_index(clb, k);
        q_val_[static_cast<std::size_t>(site)] = cfg.init;
        schedule(Event{now_ + dm_->lut_delay, ++seq_, EventKind::kEval,
                       fabric::kInvalidNode, site, false, 0});
      }
    }
  }
  for (NetId n : fabric_->live_nets()) on_net_changed(n);
}

FabricSim::~FabricSim() { fabric_->remove_listener(this); }

int FabricSim::site_index(ClbCoord clb, int cell) const {
  const auto& geom = fabric_->geometry();
  return (clb.row * geom.clb_cols + clb.col) * geom.cells_per_clb + cell;
}

ClbCoord FabricSim::site_clb(int site) const {
  const auto& geom = fabric_->geometry();
  const int clb_index = site / geom.cells_per_clb;
  return ClbCoord{clb_index / geom.clb_cols, clb_index % geom.clb_cols};
}

int FabricSim::site_cell(int site) const {
  return site % fabric_->geometry().cells_per_clb;
}

void FabricSim::add_clock(ClockSpec spec) {
  RELOGIC_CHECK(spec.period > SimTime::zero());
  for (const auto& c : clocks_) {
    RELOGIC_CHECK_MSG(c.domain != spec.domain, "clock domain already defined");
  }
  clocks_.push_back(spec);
  SimTime first = spec.first_edge;
  while (first < now_) first += spec.period;
  schedule(Event{first, ++seq_, EventKind::kClockEdge, fabric::kInvalidNode,
                 -1, false, spec.domain});
}

bool FabricSim::has_clock(std::uint8_t domain) const {
  for (const auto& c : clocks_) {
    if (c.domain == domain) return true;
  }
  return false;
}

SimTime FabricSim::clock_period(std::uint8_t domain) const {
  for (const auto& c : clocks_) {
    if (c.domain == domain) return c.period;
  }
  throw ContractError("no clock defined for domain " + std::to_string(domain));
}

SimTime FabricSim::next_edge(std::uint8_t domain, SimTime from) const {
  for (const auto& c : clocks_) {
    if (c.domain != domain) continue;
    if (from <= c.first_edge) return c.first_edge;
    const std::int64_t k =
        (from - c.first_edge).picoseconds() / c.period.picoseconds();
    SimTime t = c.first_edge + c.period * k;
    if (t < from) t += c.period;
    return t;
  }
  throw ContractError("no clock defined for domain " + std::to_string(domain));
}

void FabricSim::drive_pad(NodeId pad, bool value) {
  RELOGIC_CHECK(fabric_->graph().info(pad).kind == NodeKind::kPad);
  pad_driven_[pad] = true;
  auto it = pad_val_.find(pad);
  if (it != pad_val_.end() && it->second == value) return;
  pad_val_[pad] = value;
  monitor_.record_transition(pad, now_);
  propagate_pin(pad, value, now_);
}

bool FabricSim::pad_value(NodeId pad) const {
  auto it = pad_val_.find(pad);
  return it != pad_val_.end() && it->second;
}

void FabricSim::run_until(SimTime t) {
  RELOGIC_CHECK(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    const Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    process(e);
    ++events_processed_;
  }
  now_ = t;
}

void FabricSim::run_cycles(int n, std::uint8_t domain) {
  RELOGIC_CHECK(n >= 0);
  SimTime t = now_;
  for (int i = 0; i < n; ++i) t = next_edge(domain, t + SimTime::ps(1));
  run_until(t + clock_period(domain) / 4);
}

bool FabricSim::state_of(ClbCoord clb, int cell) const {
  return q_val_[static_cast<std::size_t>(
      (clb.row * fabric_->geometry().clb_cols + clb.col) *
          fabric_->geometry().cells_per_clb +
      cell)];
}

bool FabricSim::comb_of(ClbCoord clb, int cell) const {
  return x_val_[static_cast<std::size_t>(
      (clb.row * fabric_->geometry().clb_cols + clb.col) *
          fabric_->geometry().cells_per_clb +
      cell)];
}

bool FabricSim::pin_of(ClbCoord clb, int cell, fabric::CellPort port) const {
  const int site =
      (clb.row * fabric_->geometry().clb_cols + clb.col) *
          fabric_->geometry().cells_per_clb +
      cell;
  return pin_val_[static_cast<std::size_t>(site)]
                 [static_cast<std::size_t>(port)];
}

bool FabricSim::net_value(NetId net) const {
  const auto& tree = fabric_->net(net);
  RELOGIC_CHECK_MSG(!tree.sources.empty(), "net has no source");
  return source_pin_value(tree.sources.front());
}

bool FabricSim::source_pin_value(NodeId pin) const {
  const auto info = fabric_->graph().info(pin);
  switch (info.kind) {
    case NodeKind::kOutPin: {
      const int site = site_index(info.tile, info.a);
      return info.b ? q_val_[static_cast<std::size_t>(site)]
                    : x_val_[static_cast<std::size_t>(site)];
    }
    case NodeKind::kPad: {
      auto it = pad_val_.find(pin);
      return it != pad_val_.end() && it->second;
    }
    default:
      throw ContractError("node is not a net source: " + info.to_string());
  }
}

unsigned FabricSim::lut_input_vector(int site) const {
  const auto& pins = pin_val_[static_cast<std::size_t>(site)];
  unsigned vec = 0;
  for (int i = 0; i < 4; ++i) vec |= (pins[static_cast<std::size_t>(i)] ? 1u : 0u) << i;
  return vec;
}

void FabricSim::schedule(Event e) { queue_.push(e); }

void FabricSim::process(const Event& e) {
  switch (e.kind) {
    case EventKind::kPinSet:
      do_pin_set(e.node, e.value, e.time);
      break;
    case EventKind::kEval:
      do_eval(e.site, e.time);
      break;
    case EventKind::kQSet:
      do_q_set(e.site, e.value, e.time);
      break;
    case EventKind::kClockEdge:
      do_clock_edge(e.domain, e.time);
      break;
  }
}

void FabricSim::do_pin_set(NodeId node, bool value, SimTime t) {
  const auto info = fabric_->graph().info(node);
  if (info.kind == NodeKind::kPad) {
    auto it = pad_val_.find(node);
    const bool old = it != pad_val_.end() && it->second;
    if (old == value && it != pad_val_.end()) return;
    pad_val_[node] = value;
    if (old != value) monitor_.record_transition(node, t);
    return;
  }
  RELOGIC_CHECK(info.kind == NodeKind::kInPin);
  const int site = site_index(info.tile, info.a);
  const int port = info.b;
  auto& pins = pin_val_[static_cast<std::size_t>(site)];
  if (pins[static_cast<std::size_t>(port)] == value) return;
  pins[static_cast<std::size_t>(port)] = value;
  monitor_.record_transition(node, t);

  const auto& cfg = fabric_->cell(info.tile, info.a);
  if (!cfg.used) return;
  if (port < 4) {
    schedule(Event{t + dm_->lut_delay, ++seq_, EventKind::kEval,
                   fabric::kInvalidNode, site, false, 0});
  } else if (port == 4) {
    // CE pin: latch transparency opening captures the current D value.
    if (cfg.reg == fabric::RegMode::kLatch && value) {
      const bool d = cfg.d_src == fabric::DSrc::kBypass
                         ? pins[5]
                         : x_val_[static_cast<std::size_t>(site)];
      schedule(Event{t + dm_->latch_d_to_q, ++seq_, EventKind::kQSet,
                     fabric::kInvalidNode, site, d, 0});
    }
  } else {
    // BX bypass pin: transparent latches in bypass mode follow it.
    if (cfg.reg == fabric::RegMode::kLatch &&
        cfg.d_src == fabric::DSrc::kBypass && pins[4]) {
      schedule(Event{t + dm_->latch_d_to_q, ++seq_, EventKind::kQSet,
                     fabric::kInvalidNode, site, value, 0});
    }
  }
}

void FabricSim::do_eval(int site, SimTime t) {
  const ClbCoord clb = site_clb(site);
  const int cell = site_cell(site);
  const auto& cfg = fabric_->cell(clb, cell);
  if (!cfg.used) return;
  const bool x = cfg.eval(lut_input_vector(site));
  if (x == x_val_[static_cast<std::size_t>(site)]) return;
  x_val_[static_cast<std::size_t>(site)] = x;
  propagate_pin(fabric_->graph().out_pin(clb, cell, false), x, t);
  if (cfg.reg == fabric::RegMode::kLatch &&
      cfg.d_src == fabric::DSrc::kLut &&
      pin_val_[static_cast<std::size_t>(site)][4]) {
    schedule(Event{t + dm_->latch_d_to_q, ++seq_, EventKind::kQSet,
                   fabric::kInvalidNode, site, x, 0});
  }
}

void FabricSim::do_q_set(int site, bool value, SimTime t) {
  if (q_val_[static_cast<std::size_t>(site)] == value) return;
  const ClbCoord clb = site_clb(site);
  const int cell = site_cell(site);
  const auto& cfg = fabric_->cell(clb, cell);
  if (!cfg.used) return;
  q_val_[static_cast<std::size_t>(site)] = value;
  propagate_pin(fabric_->graph().out_pin(clb, cell, true), value, t);
}

std::int64_t FabricSim::edges_seen(std::uint8_t domain) const {
  auto it = edges_seen_.find(domain);
  return it == edges_seen_.end() ? 0 : it->second;
}

void FabricSim::set_clock_running(std::uint8_t domain, bool running) {
  RELOGIC_CHECK_MSG(has_clock(domain), "no clock defined for the domain");
  clock_halted_[domain] = !running;
}

bool FabricSim::clock_running(std::uint8_t domain) const {
  auto it = clock_halted_.find(domain);
  return it == clock_halted_.end() || !it->second;
}

void FabricSim::do_clock_edge(std::uint8_t domain, SimTime t) {
  if (!clock_running(domain)) {
    // Halted domain: the generator keeps its phase, nothing captures.
    for (const auto& spec : clocks_) {
      if (spec.domain == domain) {
        schedule(Event{t + spec.period, ++seq_, EventKind::kClockEdge,
                       fabric::kInvalidNode, -1, false, domain});
        break;
      }
    }
    return;
  }
  ++edges_seen_[domain];
  monitor_.on_clock_edge(t);
  check_drive_coherence();

  const auto& geom = fabric_->geometry();
  for (int r = 0; r < geom.clb_rows; ++r) {
    for (int c = 0; c < geom.clb_cols; ++c) {
      const ClbCoord clb{r, c};
      if (fabric_->clb_free(clb)) continue;
      for (int k = 0; k < geom.cells_per_clb; ++k) {
        const auto& cfg = fabric_->cell(clb, k);
        if (!cfg.used || cfg.reg != fabric::RegMode::kFF ||
            cfg.clock_domain != domain)
          continue;
        const int site = site_index(clb, k);
        const bool ce =
            !cfg.uses_ce || pin_val_[static_cast<std::size_t>(site)][4];
        if (!ce) continue;
        const bool d = cfg.d_src == fabric::DSrc::kBypass
                           ? pin_val_[static_cast<std::size_t>(site)][5]
                           : x_val_[static_cast<std::size_t>(site)];
        if (d != q_val_[static_cast<std::size_t>(site)]) {
          schedule(Event{t + dm_->clk_to_q, ++seq_, EventKind::kQSet,
                         fabric::kInvalidNode, site, d, 0});
        }
      }
    }
  }

  // Next edge.
  for (const auto& spec : clocks_) {
    if (spec.domain == domain) {
      schedule(Event{t + spec.period, ++seq_, EventKind::kClockEdge,
                     fabric::kInvalidNode, -1, false, domain});
      break;
    }
  }
}

void FabricSim::propagate_pin(NodeId pin, bool value, SimTime t) {
  auto it = nets_of_pin_.find(pin);
  if (it == nets_of_pin_.end()) return;
  for (NetId net : it->second) {
    const NetCache& cache = net_cache_[net];
    // Multi-source nets: the paralleled drivers are functionally identical
    // (verified by check_drive_coherence), so last-write-wins per sink is
    // the settled value; skew between them is the Fig. 6 fuzziness.
    for (const auto& [sink, delay] : cache.sinks) {
      schedule(Event{t + delay, ++seq_, EventKind::kPinSet, sink, -1, value,
                     0});
    }
  }
}

void FabricSim::rebuild_net_cache(NetId net) {
  if (net_cache_.size() <= net) net_cache_.resize(net + 1);
  NetCache& cache = net_cache_[net];

  // Unregister old source mappings.
  for (NodeId s : cache.sources) {
    auto it = nets_of_pin_.find(s);
    if (it != nets_of_pin_.end()) std::erase(it->second, net);
  }
  cache = NetCache{};
  if (!fabric_->net_exists(net)) return;

  const auto& tree = fabric_->net(net);
  cache.sources = tree.sources;
  for (NodeId s : cache.sources) nets_of_pin_[s].push_back(net);

  // Forward traversal from sources accumulating the max delay per node;
  // tolerates partially built trees (unreachable sinks are simply absent).
  std::unordered_map<NodeId, std::vector<NodeId>> adj;
  for (const auto& e : tree.edges) adj[e.from].push_back(e.to);
  std::unordered_map<NodeId, SimTime> max_delay;
  struct Item {
    NodeId node;
    SimTime d;
    int depth;
  };
  const int limit = static_cast<int>(tree.edges.size()) + 2;
  std::vector<Item> stack;
  for (NodeId s : cache.sources) stack.push_back({s, SimTime::zero(), 0});
  const auto& graph = fabric_->graph();
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    if (it.depth > limit) continue;  // defensive against transient cycles
    auto a = adj.find(it.node);
    if (a == adj.end()) continue;
    for (NodeId next : a->second) {
      const SimTime d =
          it.d + dm_->pip_delay + dm_->node_delay(graph.info(next).kind);
      auto [pos, inserted] = max_delay.try_emplace(next, d);
      if (!inserted) {
        if (d <= pos->second) continue;
        pos->second = d;
      }
      stack.push_back({next, d, it.depth + 1});
    }
  }
  for (const auto& [node, d] : max_delay) {
    const NodeKind k = graph.info(node).kind;
    if (k == NodeKind::kInPin ||
        (k == NodeKind::kPad && !tree.has_source(node))) {
      cache.sinks.emplace_back(node, d);
    }
  }
}

void FabricSim::on_cell_changed(ClbCoord clb, int cell,
                                const fabric::LogicCellConfig& before,
                                const fabric::LogicCellConfig& after) {
  const int site = site_index(clb, cell);
  if (!before.used && after.used) {
    q_val_[static_cast<std::size_t>(site)] = after.init;
    // Refresh inputs: routed pins read their net's current value; unrouted
    // pins revert to the default level (a previous tenant of this site may
    // have left stale values behind).
    const auto& graph = fabric_->graph();
    for (int p = 0; p < fabric::kInPorts; ++p) {
      const NodeId pin =
          graph.in_pin(clb, cell, static_cast<fabric::CellPort>(p));
      const NetId net = graph.occupant(pin);
      bool value = false;
      if (net != fabric::kNoNet && fabric_->net_exists(net) &&
          !fabric_->net(net).sources.empty()) {
        value = source_pin_value(fabric_->net(net).sources.front());
      }
      schedule(Event{now_, ++seq_, EventKind::kPinSet, pin, -1, value, 0});
    }
  }
  if (after.used) {
    schedule(Event{now_ + dm_->lut_delay, ++seq_, EventKind::kEval,
                   fabric::kInvalidNode, site, false, 0});
  }
}

void FabricSim::on_net_changed(NetId net) {
  rebuild_net_cache(net);
  if (!fabric_->net_exists(net)) return;
  const NetCache& cache = net_cache_[net];
  if (cache.sources.empty()) return;
  const bool v = source_pin_value(cache.sources.front());
  for (const auto& [sink, delay] : cache.sinks) {
    schedule(
        Event{now_ + delay, ++seq_, EventKind::kPinSet, sink, -1, v, 0});
  }
}

void FabricSim::check_drive_coherence() {
  for (NetId net = 1; net < net_cache_.size(); ++net) {
    if (!fabric_->net_exists(net)) continue;
    const NetCache& cache = net_cache_[net];
    if (cache.sources.size() < 2) continue;
    const bool v0 = source_pin_value(cache.sources.front());
    for (std::size_t i = 1; i < cache.sources.size(); ++i) {
      if (source_pin_value(cache.sources[i]) != v0) {
        monitor_.add_violation(Violation{
            ViolationKind::kDriveConflict, now_, cache.sources[i],
            "paralleled sources of net '" + fabric_->net(net).name +
                "' disagree at a clock edge"});
        break;
      }
    }
  }
}

}  // namespace relogic::sim
