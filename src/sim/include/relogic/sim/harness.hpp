// CircuitHarness: lockstep comparison of a fabric implementation against
// the golden netlist model.
//
// Drives identical stimuli into both, cycle by cycle, and compares every
// primary output and every state element. Run *across* a relocation, a
// clean harness report is the reproduction of the paper's validation
// ("no loss of state information or functional disturbance was observed
// during the execution of these experiments").
#pragma once

#include <string>
#include <vector>

#include "relogic/common/rng.hpp"
#include "relogic/netlist/golden.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/sim/simulator.hpp"

namespace relogic::sim {

class CircuitHarness {
 public:
  /// The simulator must already have a clock for the implementation's
  /// domain (synchronous circuits).
  CircuitHarness(FabricSim& sim, const netlist::Netlist& nl,
                 const place::Implementation& impl);

  /// Registers every registered primary output with the glitch monitor.
  void watch_registered_outputs();

  struct CycleResult {
    int output_mismatches = 0;
    int state_mismatches = 0;
    bool ok() const { return output_mismatches == 0 && state_mismatches == 0; }
  };

  /// One synchronous cycle: drive inputs (ordered as
  /// netlist.inputs()), settle, clock both models, compare outputs and
  /// state.
  CycleResult step(const std::vector<bool>& inputs);
  CycleResult step_random(Rng& rng);

  /// For asynchronous (latch) circuits: drive inputs, let both models
  /// settle, compare outputs and latch state. No clock involved.
  CycleResult settle_step(const std::vector<bool>& inputs);

  int cycles_run() const { return cycles_; }
  int total_mismatches() const { return mismatches_; }
  const std::vector<std::string>& mismatch_log() const { return log_; }
  netlist::GoldenSim& golden() { return golden_; }
  const place::Implementation& implementation() const { return *impl_; }

 private:
  void drive(const std::vector<bool>& inputs);
  CycleResult compare(const char* when);

  FabricSim* sim_;
  const netlist::Netlist* nl_;
  const place::Implementation* impl_;
  netlist::GoldenSim golden_;
  std::int64_t golden_edges_ = 0;
  int cycles_ = 0;
  int mismatches_ = 0;
  std::vector<std::string> log_;
};

}  // namespace relogic::sim
