// FabricSim: event-driven logic simulation of the configured fabric.
//
// The simulator executes whatever the Fabric currently describes — it
// subscribes as a FabricListener, so partial reconfiguration performed
// *while the simulation runs* (the whole point of the paper) is picked up
// incrementally:
//
//  * identical rewrites never reach the simulator (Fabric suppresses them),
//    reproducing the device property that rewriting the same configuration
//    data generates no transients;
//  * a net change re-propagates the net's current source value to every
//    sink with the routed path delay — a newly paralleled replica path
//    therefore exhibits exactly the Fig. 6 behaviour (the sink settles
//    after the longer of the two delays);
//  * a newly configured cell initialises its storage element to the
//    configured init value and evaluates from its currently-routed inputs.
//
// Timing model: LUTs have a lumped input-to-X delay, storage elements a
// clock-to-XQ delay, and each routed sink its path delay from the
// DelayModel (max over paralleled paths). Evaluation on delivery gives
// inertial-delay semantics: pulses shorter than the LUT delay are absorbed.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "relogic/common/time.hpp"
#include "relogic/fabric/fabric.hpp"
#include "relogic/sim/monitor.hpp"

namespace relogic::sim {

struct ClockSpec {
  std::uint8_t domain = 0;
  SimTime period = SimTime::ns(100);  ///< 10 MHz user clock by default
  SimTime first_edge = SimTime::ns(100);
};

class FabricSim final : public fabric::FabricListener {
 public:
  FabricSim(fabric::Fabric& fabric, const fabric::DelayModel& dm);
  ~FabricSim() override;

  FabricSim(const FabricSim&) = delete;
  FabricSim& operator=(const FabricSim&) = delete;

  // ---- clocks -------------------------------------------------------------
  void add_clock(ClockSpec spec);
  /// True if a clock generator exists for the domain.
  bool has_clock(std::uint8_t domain) const;
  /// Time of the next rising edge of a domain at or after `from`.
  SimTime next_edge(std::uint8_t domain, SimTime from) const;
  SimTime clock_period(std::uint8_t domain) const;
  /// Rising edges of a domain processed so far. Lets a harness catch its
  /// golden model up across reconfiguration intervals, during which the
  /// fabric keeps clocking (the application never stops).
  std::int64_t edges_seen(std::uint8_t domain) const;

  /// Gates a clock domain (the stop-the-system case of the paper's Sec. 2:
  /// LUT-RAM relocation requires halting to guarantee data coherency).
  /// While halted, the domain's FFs do not capture and its edges are not
  /// counted; other domains keep running.
  void set_clock_running(std::uint8_t domain, bool running);
  bool clock_running(std::uint8_t domain) const;

  // ---- external stimulus ----------------------------------------------------
  /// Drives an input pad to a value (takes effect at current time).
  void drive_pad(fabric::NodeId pad, bool value);
  /// Current value observed at any pad (input or output).
  bool pad_value(fabric::NodeId pad) const;

  // ---- execution ------------------------------------------------------------
  SimTime now() const { return now_; }
  /// Processes events up to and including time `t`; advances now() to `t`.
  void run_until(SimTime t);
  /// Runs past the next `n` rising edges of domain plus a settle margin.
  void run_cycles(int n, std::uint8_t domain = 0);

  // ---- observation ----------------------------------------------------------
  /// Storage-element (XQ) value of a cell site.
  bool state_of(ClbCoord clb, int cell) const;
  /// Combinational (X) value of a cell site.
  bool comb_of(ClbCoord clb, int cell) const;
  /// Current value seen at a cell input pin.
  bool pin_of(ClbCoord clb, int cell, fabric::CellPort port) const;
  /// Current logic value on a net (value at its first source pin).
  bool net_value(fabric::NetId net) const;

  GlitchMonitor& monitor() { return monitor_; }
  const GlitchMonitor& monitor() const { return monitor_; }

  /// Checks that every multi-source net's sources currently agree; records
  /// kDriveConflict violations. Invoked automatically at each clock edge.
  void check_drive_coherence();

  std::int64_t events_processed() const { return events_processed_; }

  // ---- FabricListener --------------------------------------------------------
  void on_cell_changed(ClbCoord clb, int cell,
                       const fabric::LogicCellConfig& before,
                       const fabric::LogicCellConfig& after) override;
  void on_net_changed(fabric::NetId net) override;

 private:
  enum class EventKind : std::uint8_t { kPinSet, kEval, kClockEdge, kQSet };
  struct Event {
    SimTime time;
    std::uint64_t seq = 0;
    EventKind kind;
    fabric::NodeId node = fabric::kInvalidNode;  // kPinSet target
    std::int32_t site = -1;                      // kEval / kQSet
    bool value = false;
    std::uint8_t domain = 0;  // kClockEdge
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct NetCache {
    std::vector<fabric::NodeId> sources;
    std::vector<std::pair<fabric::NodeId, SimTime>> sinks;  // max path delay
  };

  int site_index(ClbCoord clb, int cell) const;
  ClbCoord site_clb(int site) const;
  int site_cell(int site) const;

  void schedule(Event e);
  void process(const Event& e);
  void do_pin_set(fabric::NodeId node, bool value, SimTime t);
  void do_eval(int site, SimTime t);
  void do_q_set(int site, bool value, SimTime t);
  void do_clock_edge(std::uint8_t domain, SimTime t);
  /// Propagates the value of an output pin to all sinks of its nets.
  void propagate_pin(fabric::NodeId pin, bool value, SimTime t);
  void rebuild_net_cache(fabric::NetId net);
  bool source_pin_value(fabric::NodeId pin) const;
  unsigned lut_input_vector(int site) const;

  fabric::Fabric* fabric_;
  const fabric::DelayModel* dm_;
  SimTime now_ = SimTime::zero();
  std::uint64_t seq_ = 0;
  std::int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;

  // Dense per-site state (4 cells per CLB).
  std::vector<std::array<bool, 6>> pin_val_;  // I0..I3, CE, BX
  std::vector<bool> x_val_;
  std::vector<bool> q_val_;

  std::unordered_map<fabric::NodeId, bool> pad_val_;
  std::unordered_map<fabric::NodeId, bool> pad_driven_;  // externally driven

  std::vector<NetCache> net_cache_;  // by net id
  std::unordered_map<fabric::NodeId, std::vector<fabric::NetId>> nets_of_pin_;

  std::vector<ClockSpec> clocks_;
  std::unordered_map<std::uint8_t, std::int64_t> edges_seen_;
  std::unordered_map<std::uint8_t, bool> clock_halted_;
  GlitchMonitor monitor_;
};

}  // namespace relogic::sim
