// GlitchMonitor: machine-checked version of the paper's oscilloscope.
//
// The paper's claims — "to prevent output glitches ... both CLBs must
// remain in parallel for at least one clock cycle", "no loss of information
// or functional disturbance was observed" — become recorded violations:
//
//  * kGlitch      — a monitored registered net transitioned more than once
//                   within one clock window (a pulse that settles back),
//  * kDriveConflict — a net's paralleled sources disagreed at a sampling
//                   point (the relocation paralleled outputs that were not
//                   functionally identical),
//  * kStateDivergence — recorded by the harness when fabric state differs
//                   from the golden model after a clock edge.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relogic/common/time.hpp"
#include "relogic/fabric/routing.hpp"

namespace relogic::sim {

enum class ViolationKind : std::uint8_t {
  kGlitch,
  kDriveConflict,
  kStateDivergence,
};

struct Violation {
  ViolationKind kind;
  SimTime time;
  fabric::NodeId node = fabric::kInvalidNode;
  std::string description;
};

class GlitchMonitor {
 public:
  /// Monitors a node (output pad or input pin) whose value must change at
  /// most once per clock window.
  void watch(fabric::NodeId node, std::string label);
  void unwatch(fabric::NodeId node);
  bool watching(fabric::NodeId node) const {
    return watched_.contains(node);
  }

  /// Called by the simulator on every value change of a watched node.
  void record_transition(fabric::NodeId node, SimTime time);
  /// Called by the simulator at each clock edge: closes the window.
  void on_clock_edge(SimTime time);

  void add_violation(Violation v) { violations_.push_back(std::move(v)); }

  const std::vector<Violation>& violations() const { return violations_; }
  int count(ViolationKind kind) const;
  bool clean() const { return violations_.empty(); }
  void clear() { violations_.clear(); }

  /// Total transitions observed on watched nodes (diagnostics).
  std::int64_t transitions_observed() const { return transitions_; }

 private:
  struct Watch {
    std::string label;
    int transitions_this_window = 0;
  };
  std::unordered_map<fabric::NodeId, Watch> watched_;
  std::vector<Violation> violations_;
  std::int64_t transitions_ = 0;
};

std::string to_string(ViolationKind kind);

}  // namespace relogic::sim
