#include "relogic/sim/monitor.hpp"

namespace relogic::sim {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kGlitch:
      return "glitch";
    case ViolationKind::kDriveConflict:
      return "drive-conflict";
    case ViolationKind::kStateDivergence:
      return "state-divergence";
  }
  return "?";
}

void GlitchMonitor::watch(fabric::NodeId node, std::string label) {
  watched_[node] = Watch{std::move(label), 0};
}

void GlitchMonitor::unwatch(fabric::NodeId node) { watched_.erase(node); }

void GlitchMonitor::record_transition(fabric::NodeId node, SimTime time) {
  auto it = watched_.find(node);
  if (it == watched_.end()) return;
  ++transitions_;
  if (++it->second.transitions_this_window > 1) {
    violations_.push_back(Violation{
        ViolationKind::kGlitch, time, node,
        it->second.label + " transitioned " +
            std::to_string(it->second.transitions_this_window) +
            " times within one clock window"});
  }
}

void GlitchMonitor::on_clock_edge(SimTime) {
  for (auto& [node, w] : watched_) w.transitions_this_window = 0;
}

int GlitchMonitor::count(ViolationKind kind) const {
  int n = 0;
  for (const auto& v : violations_)
    if (v.kind == kind) ++n;
  return n;
}

}  // namespace relogic::sim
