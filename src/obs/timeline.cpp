#include "relogic/obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "relogic/common/audit.hpp"
#include "relogic/common/logging.hpp"

namespace relogic::obs {

using runtime::json_number;
using runtime::json_quoted;

void MetricsTimeline::record(SimTime t, const runtime::Telemetry& registry,
                             int sweep_col, int quarantined_devices) {
  Snapshot s;
  s.t = t;
  s.sweep_col = sweep_col;
  s.quarantined_devices = quarantined_devices;
  for (const auto& [name, c] : registry.counters()) s.counters[name] = c.value();
  for (const auto& [name, g] : registry.gauges())
    s.gauges[name] = GaugeState{g.sum(), g.samples()};
  for (const auto& [name, h] : registry.histograms())
    s.histograms[name] =
        HistogramState{h.bounds(), h.bucket_counts(), h.count(), h.sum()};
  if (!samples_.empty()) {
    RELOGIC_CHECK_MSG(t >= samples_.back().t,
                      "metrics samples must be recorded in time order");
    if (samples_.back().t == t) {
      samples_.back() = std::move(s);
      return;
    }
  }
  samples_.push_back(std::move(s));
}

std::int64_t MetricsTimeline::counter_delta(std::size_t row,
                                            const std::string& name) const {
  RELOGIC_CHECK(row < samples_.size());
  const auto it = samples_[row].counters.find(name);
  if (it == samples_[row].counters.end()) return 0;
  std::int64_t before = 0;
  if (const Snapshot* p = prev(row)) {
    const auto pit = p->counters.find(name);
    if (pit != p->counters.end()) before = pit->second;
  }
  return it->second - before;
}

double MetricsTimeline::counter_rate_per_s(std::size_t row,
                                           const std::string& name) const {
  RELOGIC_CHECK(row < samples_.size());
  const Snapshot* p = prev(row);
  const double dt_s =
      (samples_[row].t - (p ? p->t : SimTime::zero())).seconds();
  if (dt_s <= 0.0) return 0.0;
  return static_cast<double>(counter_delta(row, name)) / dt_s;
}

std::int64_t MetricsTimeline::window_hist_count(
    std::size_t row, const std::string& name) const {
  RELOGIC_CHECK(row < samples_.size());
  const auto it = samples_[row].histograms.find(name);
  if (it == samples_[row].histograms.end()) return 0;
  std::int64_t before = 0;
  if (const Snapshot* p = prev(row)) {
    const auto pit = p->histograms.find(name);
    if (pit != p->histograms.end()) before = pit->second.count;
  }
  return it->second.count - before;
}

std::optional<double> MetricsTimeline::quantile_from_buckets(
    const std::vector<double>& bounds,
    const std::vector<std::int64_t>& counts, double q) {
  std::int64_t total = 0;
  for (std::int64_t c : counts) total += c;
  if (total <= 0) return std::nullopt;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      if (i < bounds.size()) return bounds[i];
      break;  // overflow bucket: report the largest finite bound
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::optional<double> MetricsTimeline::window_quantile(
    std::size_t row, const std::string& name, double q) const {
  RELOGIC_CHECK(row < samples_.size());
  const auto it = samples_[row].histograms.find(name);
  if (it == samples_[row].histograms.end()) return std::nullopt;
  std::vector<std::int64_t> delta = it->second.counts;
  if (const Snapshot* p = prev(row)) {
    const auto pit = p->histograms.find(name);
    if (pit != p->histograms.end()) {
      RELOGIC_CHECK_MSG(pit->second.counts.size() == delta.size(),
                        "histogram " + name +
                            " changed bucket shape between samples");
      for (std::size_t i = 0; i < delta.size(); ++i)
        delta[i] -= pit->second.counts[i];
    }
  }
  return quantile_from_buckets(it->second.bounds, delta, q);
}

MetricsTimeline MetricsTimeline::fold(
    const std::vector<const MetricsTimeline*>& parts,
    std::vector<SimTime> quarantine_times) {
  std::sort(quarantine_times.begin(), quarantine_times.end());
  MetricsTimeline out;
  std::set<SimTime> time_set;
  for (const MetricsTimeline* p : parts)
    for (const Snapshot& s : p->samples_) time_set.insert(s.t);

  std::vector<std::size_t> cursor(parts.size(), 0);
  for (const SimTime t : time_set) {
    Snapshot row;
    row.t = t;
    row.quarantined_devices = static_cast<int>(
        std::upper_bound(quarantine_times.begin(), quarantine_times.end(), t) -
        quarantine_times.begin());
    for (std::size_t d = 0; d < parts.size(); ++d) {
      const auto& dev = parts[d]->samples_;
      if (dev.empty()) continue;
      // Latest device snapshot at or before t (carry-forward: after a
      // device's run ends, its final totals keep contributing).
      while (cursor[d] + 1 < dev.size() && dev[cursor[d] + 1].t <= t)
        ++cursor[d];
      const Snapshot& s = dev[cursor[d]];
      if (s.t > t) continue;  // device has not taken its first sample yet
      for (const auto& [name, v] : s.counters) row.counters[name] += v;
      for (const auto& [name, g] : s.gauges) {
        GaugeState& agg = row.gauges[name];
        agg.sum += g.sum;
        agg.samples += g.samples;
      }
      for (const auto& [name, h] : s.histograms) {
        auto [it, inserted] = row.histograms.try_emplace(name, h);
        if (inserted) continue;
        HistogramState& agg = it->second;
        RELOGIC_CHECK_MSG(agg.bounds == h.bounds,
                          "folding histogram " + name +
                              " with mismatched bucket bounds");
        for (std::size_t i = 0; i < agg.counts.size(); ++i)
          agg.counts[i] += h.counts[i];
        agg.count += h.count;
        agg.sum += h.sum;
      }
    }
    out.samples_.push_back(std::move(row));
  }
  return out;
}

namespace {

/// Renders one optional window quantile as a JSON member ("" when absent).
std::string window_quantile_member(const MetricsTimeline& tl, std::size_t row,
                                   const std::string& name, const char* key,
                                   double q) {
  const auto v = tl.window_quantile(row, name, q);
  if (!v) return "";
  return std::string(", \"") + key + "\": " + json_number(*v);
}

}  // namespace

std::string MetricsTimeline::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "{\n" << pad << "  \"samples\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Snapshot& s = samples_[i];
    os << (i ? ",\n" : "\n") << pad << "    {\"t_ms\": "
       << json_number(s.t.milliseconds()) << ", \"sweep_col\": " << s.sweep_col
       << ", \"quarantined_devices\": " << s.quarantined_devices;

    os << ", \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : s.counters) {
      os << (first ? "" : ", ") << json_quoted(name) << ": {\"value\": " << v
         << ", \"delta\": " << counter_delta(i, name)
         << ", \"rate_per_s\": " << json_number(counter_rate_per_s(i, name))
         << "}";
      first = false;
    }
    os << "}";

    os << ", \"gauges\": {";
    first = true;
    for (const auto& [name, g] : s.gauges) {
      os << (first ? "" : ", ") << json_quoted(name)
         << ": {\"mean\": " << json_number(g.mean())
         << ", \"samples\": " << g.samples << "}";
      first = false;
    }
    os << "}";

    os << ", \"histograms\": {";
    first = true;
    for (const auto& [name, h] : s.histograms) {
      os << (first ? "" : ", ") << json_quoted(name)
         << ": {\"count\": " << h.count
         << ", \"sum\": " << json_number(h.sum);
      static constexpr struct {
        const char* key;
        double q;
      } kQuantiles[] = {{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}};
      for (const auto& e : kQuantiles) {
        const auto v = quantile_from_buckets(h.bounds, h.counts, e.q);
        os << ", \"" << e.key << "\": " << json_number(v.value_or(0.0));
      }
      os << ", \"window_count\": " << window_hist_count(i, name)
         << window_quantile_member(*this, i, name, "window_p50", 0.5)
         << window_quantile_member(*this, i, name, "window_p95", 0.95)
         << window_quantile_member(*this, i, name, "window_p99", 0.99) << "}";
      first = false;
    }
    os << "}}";
  }
  os << (samples_.empty() ? "" : "\n" + pad + "  ") << "]\n" << pad << "}";
  return os.str();
}

std::string MetricsTimeline::to_csv() const {
  // Stable column layout: the union of metric names across all samples
  // (counters created lazily mid-run would otherwise shift columns).
  std::set<std::string> counter_names, gauge_names, hist_names;
  for (const Snapshot& s : samples_) {
    for (const auto& [name, v] : s.counters) counter_names.insert(name);
    for (const auto& [name, g] : s.gauges) gauge_names.insert(name);
    for (const auto& [name, h] : s.histograms) hist_names.insert(name);
  }
  std::ostringstream os;
  os << "t_ms,sweep_col,quarantined_devices";
  for (const auto& n : counter_names) os << "," << n << "," << n << ".rate_per_s";
  for (const auto& n : gauge_names) os << "," << n << ".mean";
  for (const auto& n : hist_names)
    os << "," << n << ".count," << n << ".window_count," << n
       << ".window_p50," << n << ".window_p95," << n << ".window_p99";
  os << "\n";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Snapshot& s = samples_[i];
    os << json_number(s.t.milliseconds()) << "," << s.sweep_col << ","
       << s.quarantined_devices;
    for (const auto& n : counter_names) {
      const auto it = s.counters.find(n);
      os << "," << (it == s.counters.end() ? 0 : it->second) << ","
         << json_number(counter_rate_per_s(i, n));
    }
    for (const auto& n : gauge_names) {
      const auto it = s.gauges.find(n);
      os << "," << json_number(it == s.gauges.end() ? 0.0 : it->second.mean());
    }
    for (const auto& n : hist_names) {
      const auto it = s.histograms.find(n);
      os << "," << (it == s.histograms.end() ? 0 : it->second.count) << ","
         << window_hist_count(i, n);
      for (const double q : {0.5, 0.95, 0.99}) {
        const auto v = window_quantile(i, n, q);
        os << "," << (v ? json_number(*v) : "");
      }
    }
    os << "\n";
  }
  return os.str();
}

void MetricsTimeline::audit(const std::string& where) const {
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Snapshot& s = samples_[i];
    const Snapshot* p = prev(i);
    if (p) {
      RELOGIC_AUDIT_CHECK(s.t >= p->t, "MetricsTimeline",
                          where + ": sample times run backwards");
      RELOGIC_AUDIT_CHECK(
          s.quarantined_devices >= p->quarantined_devices, "MetricsTimeline",
          where + ": quarantined-device count shrank (quarantine is "
                  "permanent within a run)");
    }
    for (const auto& [name, v] : s.counters)
      RELOGIC_AUDIT_CHECK(counter_delta(i, name) >= 0, "MetricsTimeline",
                          where + "/" + name + ": counter ran backwards at " +
                              s.t.to_string());
    for (const auto& [name, g] : s.gauges) {
      std::int64_t before = 0;
      if (p) {
        const auto it = p->gauges.find(name);
        if (it != p->gauges.end()) before = it->second.samples;
      }
      RELOGIC_AUDIT_CHECK(g.samples >= before, "MetricsTimeline",
                          where + "/" + name + ": gauge sample count shrank");
    }
    for (const auto& [name, h] : s.histograms) {
      RELOGIC_AUDIT_CHECK(h.counts.size() == h.bounds.size() + 1,
                          "MetricsTimeline",
                          where + "/" + name +
                              ": bucket count does not match bounds + overflow");
      RELOGIC_AUDIT_CHECK(window_hist_count(i, name) >= 0, "MetricsTimeline",
                          where + "/" + name +
                              ": histogram count ran backwards at " +
                              s.t.to_string());
    }
  }
}

void TimelineSampler::sample(SimTime t, int sweep_col,
                             int quarantined_devices) {
  out_->record(t, live_, sweep_col, quarantined_devices);
  if (meter_) {
    for (const auto& [name, c] : live_.counters())
      meter_.counter(name, t, static_cast<double>(c.value()));
  }
}

std::string metrics_json_document(
    const MetricsTimeline& aggregate,
    const std::vector<std::pair<int, const MetricsTimeline*>>& devices,
    double sample_interval_ms) {
  std::ostringstream os;
  os << "{\n  \"schema\": " << json_quoted(kMetricsSchema)
     << ",\n  \"sample_interval_ms\": " << json_number(sample_interval_ms)
     << ",\n  \"aggregate\": " << aggregate.to_json(2) << ",\n  \"devices\": [";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    os << (i ? ",\n" : "\n") << "    {\"device\": " << devices[i].first
       << ", \"timeline\": " << devices[i].second->to_json(4) << "}";
  }
  os << (devices.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace relogic::obs
