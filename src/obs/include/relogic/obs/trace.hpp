// relogic::obs — deterministic trace spans on the simulated clock.
//
// The tracer records spans ('X' complete events, 'B'/'E' nesting pairs),
// instants ('i') and counter samples ('C') into pre-sized per-track ring
// buffers and exports Chrome trace-event JSON loadable in chrome://tracing
// and ui.perfetto.dev. Timestamps are SimTime (integer picoseconds), so a
// run with the same seed and config produces byte-identical JSON — traces
// diff across PRs exactly like telemetry. Wall-clock stamping is opt-in
// per Tracer and off by default because it breaks that contract.
//
// Threading/determinism contract (DESIGN.md §7): every track has exactly
// one writer. Register all tracks (Tracer::track) before spawning worker
// threads, in a fixed order; export walks tracks in registration order and
// events in insertion order, so the JSON is independent of how device runs
// interleave across threads.
//
// Instrumented components hold a TraceTrack handle whose default state is
// null; the disabled path of every emission is a single branch on that
// pointer. Hot call sites guard with `if (track)` so argument rendering is
// never paid when tracing is off.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "relogic/common/audit.hpp"
#include "relogic/common/thread_annotations.hpp"
#include "relogic/common/time.hpp"

#if RELOGIC_AUDIT
#include <atomic>
#endif

namespace relogic::obs {

/// One key/value attached to a trace event. The value is stored already
/// rendered as JSON (quoted string or bare number), so export is a straight
/// copy and numeric formatting is fixed at the emission site.
struct TraceArg {
  const char* key = "";
  std::string value;
};

TraceArg arg(const char* key, const std::string& v);
TraceArg arg(const char* key, const char* v);
TraceArg arg(const char* key, std::int64_t v);
TraceArg arg(const char* key, int v);
TraceArg arg(const char* key, std::size_t v);
TraceArg arg(const char* key, double v);
TraceArg arg(const char* key, bool v);
/// Simulated durations/timestamps as milliseconds with fixed precision.
TraceArg arg_ms(const char* key, SimTime t);

/// One Chrome trace event. Phases used: 'X' (complete span with duration),
/// 'B'/'E' (begin/end pair), 'i' (instant), 'C' (counter sample).
struct TraceEvent {
  char phase = 'X';
  const char* cat = "";
  std::string name;
  SimTime ts = SimTime::zero();
  SimTime dur = SimTime::zero();  ///< 'X' only
  double wall_us = -1.0;          ///< emission wall clock; < 0 = not stamped
  std::vector<TraceArg> args;
};

/// Pre-sized single-writer ring of trace events. When full, the oldest
/// events are overwritten (the most recent window survives) and `dropped`
/// counts the casualties — deterministically, since insertion order is.
///
/// Single-writer contract (DESIGN.md §7): exactly one thread pushes into a
/// given ring at a time, and readers (export) run only after the writer is
/// joined. The contract cannot be expressed as a clang capability (there is
/// no lock to name), so RELOGIC_AUDIT builds enforce it dynamically: push()
/// trips an AuditError when two writers ever overlap.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

#if RELOGIC_AUDIT
  // The concurrent-writer flag is an atomic, which is not movable — and the
  // owning Tracer::Track is moved into its deque on registration. The flag
  // is meaningless before the first post-registration push, so moves reset
  // it. Audit builds only: the unconditional members keep the default move.
  TraceBuffer(TraceBuffer&& other) noexcept
      : events_(std::move(other.events_)),
        next_(other.next_),
        size_(other.size_),
        dropped_(other.dropped_) {}
#endif

  /// Slot for the next event; the caller fills it in place. Reuses the
  /// oldest slot once the ring is full.
  TraceEvent& push();

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return events_.size(); }
  std::int64_t dropped() const { return dropped_; }
  /// Event `i` in insertion order (0 = oldest retained).
  const TraceEvent& at(std::size_t i) const;

 private:
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::int64_t dropped_ = 0;
#if RELOGIC_AUDIT
  std::atomic<bool> busy_{false};  ///< single-writer audit (see above)
#endif
};

class Tracer;

/// Nullable handle to one track of a Tracer — the null-object default every
/// instrumented component carries. All emission methods are no-ops (one
/// branch on a null pointer) until the handle comes from Tracer::track.
class TraceTrack {
 public:
  TraceTrack() = default;

  explicit operator bool() const { return buf_ != nullptr; }

  void complete(const char* cat, std::string name, SimTime ts, SimTime dur,
                std::vector<TraceArg> args = {}) const;
  void begin(const char* cat, std::string name, SimTime ts,
             std::vector<TraceArg> args = {}) const;
  void end(SimTime ts) const;
  void instant(const char* cat, std::string name, SimTime ts,
               std::vector<TraceArg> args = {}) const;
  void counter(std::string name, SimTime ts, double value) const;

  std::int64_t dropped() const { return buf_ ? buf_->dropped() : 0; }

 private:
  friend class Tracer;
  TraceEvent* emit(char phase, SimTime ts) const;
  TraceBuffer* buf_ = nullptr;
  const Tracer* tracer_ = nullptr;
};

/// Owns the tracks and renders the Chrome trace-event JSON. Tracks live in
/// a deque so handles stay valid as more are registered.
class Tracer {
 public:
  struct Options {
    /// Ring capacity per track, in events.
    std::size_t track_capacity = 1 << 14;
    /// Stamp each event with the wall clock at emission (exported as a
    /// "wall_us" arg). Off by default: it breaks byte-identical output.
    bool wall_clock = false;
  };

  Tracer();  ///< default Options
  explicit Tracer(Options opt);

  /// Registers a track and returns its handle. `process`/`thread` name the
  /// pid/tid lanes in the viewer. Must be called before the track's writer
  /// thread starts; one writer per track. Registration mutates the track
  /// registry under mu_ — handles stay valid (deque), but the export order
  /// is fixed by registration order, so register everything up front on one
  /// thread (FleetManager::set_tracer does).
  TraceTrack track(int pid, int tid, std::string process, std::string thread)
      RELOGIC_EXCLUDES(mu_);

  struct Track {
    int pid = 0;
    int tid = 0;
    std::string process;
    std::string thread;
    TraceBuffer buf;
  };

  /// Registered tracks. The reference outlives the internal lock: callers
  /// must be quiescent (no concurrent track()) — in practice export/tests
  /// run after every writer joined.
  const std::deque<Track>& tracks() const RELOGIC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return tracks_;
  }
  bool wall_clock() const { return opt_.wall_clock; }
  /// Microseconds since tracer construction (wall clock).
  double wall_now_us() const;
  /// Events overwritten across all tracks.
  std::int64_t dropped_events() const RELOGIC_EXCLUDES(mu_);

  /// Chrome trace-event JSON: metadata events naming each track, then every
  /// retained event, one per line, in track-registration + insertion order.
  std::string to_json() const RELOGIC_EXCLUDES(mu_);
  /// Renders to_json() into `path`. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  std::int64_t dropped_locked() const RELOGIC_REQUIRES(mu_);

  Options opt_;
  /// Guards the registry *structure* (registration, export walk). Ring
  /// contents are single-writer by contract, not lock-protected — see
  /// TraceBuffer.
  mutable Mutex mu_;
  std::deque<Track> tracks_ RELOGIC_GUARDED_BY(mu_);
  std::int64_t epoch_ns_ = 0;
};

}  // namespace relogic::obs
