// Prometheus text-exposition rendering of one MetricsTimeline snapshot —
// the exact payload a future HTTP status endpoint serves for a live fleet.
//
// Mapping: counters render as `# TYPE <p><name> counter`, gauges expose
// their cumulative mean, histograms render the standard cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`. Metric names are
// sanitised to the Prometheus charset ([a-zA-Z0-9_:]); all numbers use the
// same fixed formatting as the JSON exporters, so output is deterministic.
#pragma once

#include <string>

#include "relogic/obs/timeline.hpp"

namespace relogic::obs {

/// Renders `snap` as Prometheus text exposition (version 0.0.4). `prefix`
/// namespaces every metric. Adds `<prefix>sim_time_ms` and
/// `<prefix>quarantined_devices` gauges, and `<prefix>sweep_col` when the
/// snapshot carries an active sweep position.
std::string to_prometheus(const MetricsTimeline::Snapshot& snap,
                          const std::string& prefix = "relogic_");

}  // namespace relogic::obs
