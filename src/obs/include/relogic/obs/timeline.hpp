// obs::MetricsTimeline — deterministic time-series plane over the
// runtime::Telemetry registries.
//
// A single end-of-run registry snapshot cannot show the behaviour the paper
// argues about: a roving self-test window sweeping a live device while
// requests keep arriving. The timeline records *sampled* registry snapshots
// on the simulated clock: a TimelineSampler owns a live registry that the
// discrete-event run updates as events execute, and snapshots it at a fixed
// sample interval (scheduled as DES tick events, so sample times are part
// of the deterministic event order, never wall time). Derived series —
// per-window counter deltas/rates and sliding-window histogram quantiles
// from bucket-count deltas — are computed at export time from consecutive
// snapshots, so the stored form stays a plain cumulative snapshot and
// fleet folding is a row-wise merge.
//
// Determinism contract (DESIGN.md §7.5): every sample is taken on the
// simulated clock inside one device's single-threaded DES run; the
// fleet-aggregate timeline is folded *after* the worker pool joins, in
// device-id order, on the caller's thread. Same seed + config therefore
// produces byte-identical exports regardless of worker-thread count —
// exactly the contract the trace exporter already keeps.
//
// Threading contract (DESIGN.md §8.1): a MetricsTimeline and its sampler
// are thread-confined — each fleet worker fills the timeline inside its own
// DeviceReport. Nothing here locks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "relogic/common/time.hpp"
#include "relogic/obs/trace.hpp"
#include "relogic/runtime/telemetry.hpp"

namespace relogic::obs {

/// Schema tag stamped into every metrics JSON document. Bump on any
/// incompatible change to the sample shape.
inline constexpr const char* kMetricsSchema = "relogic.metrics.v1";

class MetricsTimeline {
 public:
  struct GaugeState {
    double sum = 0.0;
    int samples = 0;
    double mean() const { return samples ? sum / samples : 0.0; }
  };
  struct HistogramState {
    std::vector<double> bounds;
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1; back() overflow
    std::int64_t count = 0;
    double sum = 0.0;
  };
  /// One cumulative registry snapshot at simulated time t. Windowed series
  /// (deltas, rates, window quantiles) are derived against the previous
  /// snapshot at export/query time.
  struct Snapshot {
    SimTime t = SimTime::zero();
    /// Active self-test sweep window column at sample time (-1: no sweep,
    /// and always -1 on fleet-aggregate rows — the sweep position is a
    /// per-device notion).
    int sweep_col = -1;
    /// Devices quarantined by the admission plane by time t (fleet-
    /// aggregate rows; 0 on per-device timelines).
    int quarantined_devices = 0;
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, GaugeState> gauges;
    std::map<std::string, HistogramState> histograms;
  };

  /// Appends a snapshot of `registry` at time t. Samples must arrive in
  /// non-decreasing time order; a sample at the same t as the previous one
  /// replaces it (the final end-of-run sample supersedes a tick that landed
  /// on the same instant).
  void record(SimTime t, const runtime::Telemetry& registry,
              int sweep_col = -1, int quarantined_devices = 0);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<Snapshot>& samples() const { return samples_; }

  // ---- derived windowed series (row vs. its predecessor; row 0 is
  // measured against an all-zero baseline at t = 0) ------------------------
  std::int64_t counter_delta(std::size_t row, const std::string& name) const;
  double counter_rate_per_s(std::size_t row, const std::string& name) const;
  std::int64_t window_hist_count(std::size_t row,
                                 const std::string& name) const;
  /// Sliding-window quantile from the bucket-count deltas between
  /// consecutive snapshots. nullopt when the window saw no new
  /// observations — "no data", never a stale cumulative value.
  std::optional<double> window_quantile(std::size_t row,
                                        const std::string& name,
                                        double q) const;

  /// Conservative quantile over a plain bucket-count vector (upper bound of
  /// the bucket holding the q-th observation; the overflow bucket reports
  /// the largest finite bound, Prometheus-style). nullopt on zero counts.
  static std::optional<double> quantile_from_buckets(
      const std::vector<double>& bounds,
      const std::vector<std::int64_t>& counts, double q);

  /// Folds per-device timelines into one fleet-aggregate timeline: the
  /// union of all sample times, each row summing every device's latest
  /// snapshot at or before that time (carry-forward, so counters stay
  /// monotone after a device's run ends). Call in device-id order after
  /// the worker pool joins — that ordering is the determinism contract.
  /// `quarantine_times` (admission-clock instants, any order) drive the
  /// quarantined_devices tag on each aggregate row.
  static MetricsTimeline fold(const std::vector<const MetricsTimeline*>& parts,
                              std::vector<SimTime> quarantine_times = {});

  /// Deterministic JSON timeline object (json_number formatting). `indent`
  /// spaces are applied to every line after the first, matching
  /// Telemetry::to_json nesting.
  std::string to_json(int indent = 0) const;
  /// CSV for plotting: one row per sample, one column block per metric
  /// (union of names across all samples; windows with no data render empty
  /// quantile cells).
  std::string to_csv() const;

  /// Cross-checks the series invariants: non-decreasing sample times,
  /// monotone counters and histogram counts, gauge sample counts that never
  /// shrink. Throws AuditError naming `where` on the first violation.
  void audit(const std::string& where) const;

 private:
  const Snapshot* prev(std::size_t row) const {
    return row > 0 && row < samples_.size() ? &samples_[row - 1] : nullptr;
  }
  std::vector<Snapshot> samples_;
};

/// Couples a live Telemetry registry (updated by the DES run as events
/// execute) to a MetricsTimeline. The scheduler's engine calls sample() on
/// metric tick events; when a trace meter track is attached, every sample
/// additionally emits one 'C' counter event per metric, so Perfetto shows
/// curves instead of a single end-of-run step.
class TimelineSampler {
 public:
  /// `out` receives the snapshots and must outlive the sampler. `interval`
  /// is the tick period on the simulated clock (must be > 0 when the
  /// sampler is handed to a scheduler).
  TimelineSampler(MetricsTimeline* out, SimTime interval)
      : out_(out), interval_(interval) {}

  runtime::Telemetry& live() { return live_; }
  const runtime::Telemetry& live() const { return live_; }
  SimTime interval() const { return interval_; }

  /// Attaches a trace counter lane (single-writer: the thread running the
  /// DES run; a default handle disables the emission).
  void set_meter(TraceTrack meter) { meter_ = meter; }

  void sample(SimTime t, int sweep_col = -1, int quarantined_devices = 0);

 private:
  MetricsTimeline* out_;
  SimTime interval_;
  runtime::Telemetry live_;
  TraceTrack meter_;
};

/// Schema-versioned metrics document: the aggregate timeline plus optional
/// per-device timelines (device id, timeline), in the order given.
std::string metrics_json_document(
    const MetricsTimeline& aggregate,
    const std::vector<std::pair<int, const MetricsTimeline*>>& devices,
    double sample_interval_ms);

}  // namespace relogic::obs
