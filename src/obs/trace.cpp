#include "relogic/obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace relogic::obs {

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Picoseconds -> microseconds with 6 decimals (i.e. exact to the ps).
std::string us_from_ps(std::int64_t ps) {
  char buf[48];
  const char* sign = ps < 0 ? "-" : "";
  const std::int64_t abs = ps < 0 ? -ps : ps;
  std::snprintf(buf, sizeof(buf), "%s%" PRId64 ".%06" PRId64, sign,
                abs / 1000000, abs % 1000000);
  return buf;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceArg arg(const char* key, const std::string& v) {
  return {key, json_quote(v)};
}
TraceArg arg(const char* key, const char* v) {
  return {key, json_quote(v)};
}
TraceArg arg(const char* key, std::int64_t v) {
  return {key, std::to_string(v)};
}
TraceArg arg(const char* key, int v) { return {key, std::to_string(v)}; }
TraceArg arg(const char* key, std::size_t v) {
  return {key, std::to_string(v)};
}
TraceArg arg(const char* key, double v) { return {key, json_number(v)}; }
TraceArg arg(const char* key, bool v) {
  return {key, v ? "true" : "false"};
}
TraceArg arg_ms(const char* key, SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", t.milliseconds());
  return {key, buf};
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : events_(capacity == 0 ? 1 : capacity) {}

TraceEvent& TraceBuffer::push() {
#if RELOGIC_AUDIT
  // Single-writer audit: a second thread entering while a push is in flight
  // is a determinism-contract violation whatever the interleaving. The flag
  // stays set on failure — every subsequent writer trips too.
  RELOGIC_AUDIT_CHECK(!busy_.exchange(true, std::memory_order_acquire),
                      "TraceBuffer",
                      "concurrent push() on a single-writer ring "
                      "(DESIGN.md §7: one writer per track)");
#endif
  TraceEvent& e = events_[next_];
  next_ = (next_ + 1) % events_.size();
  if (size_ < events_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
#if RELOGIC_AUDIT
  busy_.store(false, std::memory_order_release);
#endif
  return e;
}

const TraceEvent& TraceBuffer::at(std::size_t i) const {
  const std::size_t oldest = size_ < events_.size() ? 0 : next_;
  return events_[(oldest + i) % events_.size()];
}

TraceEvent* TraceTrack::emit(char phase, SimTime ts) const {
  if (!buf_) return nullptr;
  TraceEvent& e = buf_->push();
  e.phase = phase;
  e.cat = "";
  e.name.clear();
  e.ts = ts;
  e.dur = SimTime::zero();
  e.wall_us = tracer_ && tracer_->wall_clock() ? tracer_->wall_now_us() : -1.0;
  e.args.clear();
  return &e;
}

void TraceTrack::complete(const char* cat, std::string name, SimTime ts,
                          SimTime dur, std::vector<TraceArg> args) const {
  TraceEvent* e = emit('X', ts);
  if (!e) return;
  e->cat = cat;
  e->name = std::move(name);
  e->dur = dur;
  e->args = std::move(args);
}

void TraceTrack::begin(const char* cat, std::string name, SimTime ts,
                       std::vector<TraceArg> args) const {
  TraceEvent* e = emit('B', ts);
  if (!e) return;
  e->cat = cat;
  e->name = std::move(name);
  e->args = std::move(args);
}

void TraceTrack::end(SimTime ts) const { emit('E', ts); }

void TraceTrack::instant(const char* cat, std::string name, SimTime ts,
                         std::vector<TraceArg> args) const {
  TraceEvent* e = emit('i', ts);
  if (!e) return;
  e->cat = cat;
  e->name = std::move(name);
  e->args = std::move(args);
}

void TraceTrack::counter(std::string name, SimTime ts, double value) const {
  TraceEvent* e = emit('C', ts);
  if (!e) return;
  e->cat = "counter";
  e->name = std::move(name);
  e->args.push_back(arg("value", value));
}

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options opt) : opt_(opt), epoch_ns_(steady_ns()) {}

TraceTrack Tracer::track(int pid, int tid, std::string process,
                         std::string thread) {
  MutexLock lock(mu_);
  tracks_.push_back(Track{pid, tid, std::move(process), std::move(thread),
                          TraceBuffer(opt_.track_capacity)});
  TraceTrack handle;
  handle.buf_ = &tracks_.back().buf;
  handle.tracer_ = this;
  return handle;
}

double Tracer::wall_now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-3;
}

std::int64_t Tracer::dropped_locked() const {
  std::int64_t n = 0;
  for (const auto& t : tracks_) n += t.buf.dropped();
  return n;
}

std::int64_t Tracer::dropped_events() const {
  MutexLock lock(mu_);
  return dropped_locked();
}

std::string Tracer::to_json() const {
  MutexLock lock(mu_);
  std::string out;
  out.reserve(1 << 16);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"generator\": "
         "\"relogic::obs\", \"dropped_events\": ";
  out += std::to_string(dropped_locked());
  out += "},\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& t : tracks_) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":" + json_quote(t.process) + "}}";
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":" + json_quote(t.thread) + "}}";
  }
  for (const auto& t : tracks_) {
    for (std::size_t i = 0; i < t.buf.size(); ++i) {
      const TraceEvent& e = t.buf.at(i);
      sep();
      out += "{\"ph\":\"";
      out += e.phase;
      out += "\",\"pid\":" + std::to_string(t.pid) +
             ",\"tid\":" + std::to_string(t.tid) +
             ",\"ts\":" + us_from_ps(e.ts.picoseconds());
      if (e.phase == 'X')
        out += ",\"dur\":" + us_from_ps(e.dur.picoseconds());
      if (e.phase != 'E') {
        out += ",\"cat\":" + json_quote(e.cat);
        out += ",\"name\":" + json_quote(e.name);
      }
      if (e.phase == 'i') out += ",\"s\":\"t\"";
      if (e.phase != 'E' && (!e.args.empty() || e.wall_us >= 0.0)) {
        out += ",\"args\":{";
        bool first_arg = true;
        for (const auto& a : e.args) {
          if (!first_arg) out += ',';
          first_arg = false;
          out += json_quote(a.key) + ":" + a.value;
        }
        if (e.wall_us >= 0.0) {
          if (!first_arg) out += ',';
          out += "\"wall_us\":" + json_number(e.wall_us);
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "\n]\n}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return f.good();
}

}  // namespace relogic::obs
