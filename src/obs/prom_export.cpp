#include "relogic/obs/prom_export.hpp"

#include <sstream>

namespace relogic::obs {

namespace {

using runtime::json_number;

std::string sanitize(const std::string& name) {
  std::string metric = name;
  for (char& c : metric) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!metric.empty() && metric.front() >= '0' && metric.front() <= '9')
    metric.insert(metric.begin(), '_');
  return metric;
}

void emit(std::ostringstream& os, const std::string& name, const char* type,
          const std::string& value) {
  os << "# TYPE " << name << " " << type << "\n" << name << " " << value
     << "\n";
}

}  // namespace

std::string to_prometheus(const MetricsTimeline::Snapshot& snap,
                          const std::string& prefix) {
  std::ostringstream os;
  emit(os, prefix + "sim_time_ms", "gauge", json_number(snap.t.milliseconds()));
  emit(os, prefix + "quarantined_devices", "gauge",
       std::to_string(snap.quarantined_devices));
  if (snap.sweep_col >= 0)
    emit(os, prefix + "sweep_col", "gauge", std::to_string(snap.sweep_col));
  for (const auto& [name, v] : snap.counters)
    emit(os, prefix + sanitize(name), "counter", std::to_string(v));
  for (const auto& [name, g] : snap.gauges)
    emit(os, prefix + sanitize(name), "gauge", json_number(g.mean()));
  for (const auto& [name, h] : snap.histograms) {
    const std::string metric = prefix + sanitize(name);
    os << "# TYPE " << metric << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? json_number(h.bounds[i]) : "+Inf";
      os << metric << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << metric << "_sum " << json_number(h.sum) << "\n";
    os << metric << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace relogic::obs
