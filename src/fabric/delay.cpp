#include "relogic/fabric/delay.hpp"

namespace relogic::fabric {

SimTime DelayModel::path_delay(const RoutingSkeleton& skeleton,
                               std::span<const NodeId> path) const {
  SimTime total = SimTime::zero();
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += pip_delay;
    total += node_delay(skeleton.info(path[i]).kind);
  }
  return total;
}

}  // namespace relogic::fabric
