#include "relogic/fabric/device.hpp"

#include "relogic/common/error.hpp"

namespace relogic::fabric {

DeviceGeometry DeviceGeometry::preset(DevicePreset p) {
  DeviceGeometry g;
  switch (p) {
    case DevicePreset::kXCV50:
      g.name = "XCV50";
      g.clb_rows = 16;
      g.clb_cols = 24;
      break;
    case DevicePreset::kXCV100:
      g.name = "XCV100";
      g.clb_rows = 20;
      g.clb_cols = 30;
      break;
    case DevicePreset::kXCV150:
      g.name = "XCV150";
      g.clb_rows = 24;
      g.clb_cols = 36;
      break;
    case DevicePreset::kXCV200:
      g.name = "XCV200";
      g.clb_rows = 28;
      g.clb_cols = 42;
      break;
    case DevicePreset::kXCV300:
      g.name = "XCV300";
      g.clb_rows = 32;
      g.clb_cols = 48;
      break;
    case DevicePreset::kXCV400:
      g.name = "XCV400";
      g.clb_rows = 40;
      g.clb_cols = 60;
      break;
    case DevicePreset::kXCV600:
      g.name = "XCV600";
      g.clb_rows = 48;
      g.clb_cols = 72;
      break;
    case DevicePreset::kXCV800:
      g.name = "XCV800";
      g.clb_rows = 56;
      g.clb_cols = 84;
      break;
    case DevicePreset::kXCV1000:
      g.name = "XCV1000";
      g.clb_rows = 64;
      g.clb_cols = 96;
      break;
    case DevicePreset::kXCV4000:
      g.name = "XCV4000";
      g.clb_rows = 128;
      g.clb_cols = 192;
      break;
  }
  return g;
}

DeviceGeometry DeviceGeometry::tiny(int rows, int cols) {
  RELOGIC_CHECK(rows >= 2 && cols >= 2);
  DeviceGeometry g;
  g.name = "TINY" + std::to_string(rows) + "x" + std::to_string(cols);
  g.clb_rows = rows;
  g.clb_cols = cols;
  return g;
}

DeviceGeometry DeviceGeometry::tiny_dense(int rows, int cols) {
  DeviceGeometry g = tiny(rows, cols);
  g.name = "DENSE" + std::to_string(rows) + "x" + std::to_string(cols);
  g.cells_per_clb = 8;
  // Keep the column able to hold every cell's config frames plus routing:
  // 8 cells x 4 frames = 32 logic frames; the Virtex 48-frame column still
  // leaves [32, 48) for routing bits.
  return g;
}

}  // namespace relogic::fabric
