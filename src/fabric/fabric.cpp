#include "relogic/fabric/fabric.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace relogic::fabric {

bool RouteTree::has_source(NodeId n) const {
  return std::find(sources.begin(), sources.end(), n) != sources.end();
}

bool RouteTree::has_edge(RouteEdge e) const {
  return std::find(edges.begin(), edges.end(), e) != edges.end();
}

std::vector<NodeId> RouteTree::nodes() const {
  std::vector<NodeId> out = sources;
  for (const auto& e : edges) {
    out.push_back(e.from);
    out.push_back(e.to);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Bring-up acquires the geometry's shared connectivity skeleton from the
// process-wide cache (built once per geometry), so constructing the Nth
// Fabric of a geometry allocates only per-device state — cell configs and
// the routing-occupancy overlay — instead of rebuilding the PIP adjacency.
Fabric::Fabric(DeviceGeometry geometry)
    : geom_(std::move(geometry)),
      graph_(geom_),
      clbs_(static_cast<std::size_t>(geom_.clb_count())),
      lut_ram_per_col_(static_cast<std::size_t>(geom_.clb_cols), 0) {
  RELOGIC_CHECK_MSG(
      geom_.cells_per_clb >= 1 && geom_.cells_per_clb <= kMaxCellsPerClb,
      "cells_per_clb outside the fabric's storable range");
  nets_.emplace_back();       // id 0 is reserved / invalid
  net_alive_.push_back(false);
}

void Fabric::add_listener(FabricListener* listener) {
  RELOGIC_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

void Fabric::remove_listener(FabricListener* listener) {
  std::erase(listeners_, listener);
}

const ClbConfig& Fabric::clb(ClbCoord c) const {
  RELOGIC_CHECK(geom_.in_bounds(c));
  return clbs_[static_cast<std::size_t>(c.row) * geom_.clb_cols + c.col];
}

const LogicCellConfig& Fabric::cell(ClbCoord c, int cell) const {
  RELOGIC_CHECK(cell >= 0 && cell < geom_.cells_per_clb);
  return clb(c).cells[static_cast<std::size_t>(cell)];
}

LogicCellConfig& Fabric::mutable_cell(ClbCoord c, int cell) {
  RELOGIC_CHECK(geom_.in_bounds(c) && cell >= 0 && cell < geom_.cells_per_clb);
  return clbs_[static_cast<std::size_t>(c.row) * geom_.clb_cols + c.col]
      .cells[static_cast<std::size_t>(cell)];
}

bool Fabric::set_cell_config(ClbCoord c, int cell,
                             const LogicCellConfig& cfg) {
  LogicCellConfig& slot = mutable_cell(c, cell);
  // A defective cell stores the corrupted image of whatever is written; the
  // identical-rewrite comparison runs against what the memory will actually
  // hold, so rewriting the same value through the same fault stays a no-op.
  LogicCellConfig stored = cfg;
  if (!faults_.empty()) {
    if (auto it = faults_.find(cell_index(c, cell)); it != faults_.end())
      stored = it->second.corrupt(stored);
  }
  if (slot == stored) return false;  // identical rewrite: no effect, no event
  const LogicCellConfig before = slot;
  used_cells_ += (stored.used ? 1 : 0) - (before.used ? 1 : 0);
  const int lut_ram_delta =
      (stored.used && stored.lut_mode == LutMode::kRam ? 1 : 0) -
      (before.used && before.lut_mode == LutMode::kRam ? 1 : 0);
  lut_ram_per_col_[static_cast<std::size_t>(c.col)] += lut_ram_delta;
  live_lut_ram_total_ += lut_ram_delta;
  slot = stored;
  for (auto* l : listeners_) l->on_cell_changed(c, cell, before, stored);
  return true;
}

void Fabric::inject_fault(ClbCoord c, int cell, CellFault fault) {
  RELOGIC_CHECK(geom_.in_bounds(c) && cell >= 0 &&
                cell < geom_.cells_per_clb);
  faults_[cell_index(c, cell)] = fault;
  // Re-corrupt the stored value so the memory is consistent with the fault
  // from the moment of injection (notifies listeners iff a bit flips).
  set_cell_config(c, cell, this->cell(c, cell));
}

std::vector<int> Fabric::fault_cell_indices() const {
  std::vector<int> out;
  out.reserve(faults_.size());
  for (const auto& [idx, fault] : faults_) out.push_back(idx);
  std::sort(out.begin(), out.end());
  return out;
}

const CellFault* Fabric::fault_at(ClbCoord c, int cell) const {
  RELOGIC_CHECK(geom_.in_bounds(c) && cell >= 0 &&
                cell < geom_.cells_per_clb);
  const auto it = faults_.find(cell_index(c, cell));
  return it == faults_.end() ? nullptr : &it->second;
}

bool Fabric::clear_cell(ClbCoord c, int cell) {
  return set_cell_config(c, cell, LogicCellConfig{});
}

NetId Fabric::create_net(std::string name) {
  nets_.push_back(RouteTree{std::move(name), {}, {}});
  net_alive_.push_back(true);
  return static_cast<NetId>(nets_.size() - 1);
}

bool Fabric::net_exists(NetId net) const {
  return net != kNoNet && net < nets_.size() && net_alive_[net];
}

const RouteTree& Fabric::net(NetId net) const {
  RELOGIC_CHECK_MSG(net_exists(net), "net does not exist");
  return nets_[net];
}

std::vector<NetId> Fabric::live_nets() const {
  std::vector<NetId> out;
  for (NetId n = 1; n < nets_.size(); ++n)
    if (net_alive_[n]) out.push_back(n);
  return out;
}

void Fabric::destroy_net(NetId net) {
  RELOGIC_CHECK_MSG(net_exists(net), "net does not exist");
  for (NodeId n : nets_[net].nodes()) graph_.release(n);
  nets_[net] = RouteTree{};
  net_alive_[net] = false;
  notify_net(net);
}

void Fabric::attach_source(NetId net, NodeId source) {
  RELOGIC_CHECK_MSG(net_exists(net), "net does not exist");
  const NodeKind kind = graph_.info(source).kind;
  RELOGIC_CHECK_MSG(kind == NodeKind::kOutPin || kind == NodeKind::kPad,
                    "net source must be a cell output pin or a pad");
  RouteTree& t = nets_[net];
  if (t.has_source(source)) return;
  graph_.occupy(source, net);
  t.sources.push_back(source);
  notify_net(net);
}

void Fabric::detach_source(NetId net, NodeId source) {
  RELOGIC_CHECK_MSG(net_exists(net), "net does not exist");
  RouteTree& t = nets_[net];
  auto it = std::find(t.sources.begin(), t.sources.end(), source);
  RELOGIC_CHECK_MSG(it != t.sources.end(), "node is not a source of the net");
  t.sources.erase(it);
  // Release unless still referenced by an edge.
  bool referenced = false;
  for (const auto& e : t.edges)
    if (e.from == source || e.to == source) referenced = true;
  if (!referenced) graph_.release(source);
  notify_net(net);
}

void Fabric::add_edges(NetId net, std::span<const RouteEdge> edges) {
  RELOGIC_CHECK_MSG(net_exists(net), "net does not exist");
  RouteTree& t = nets_[net];
  bool changed = false;
  for (const RouteEdge& e : edges) {
    RELOGIC_CHECK_MSG(graph_.has_edge(e.from, e.to),
                      "no such PIP: " + graph_.info(e.from).to_string() +
                          " -> " + graph_.info(e.to).to_string());
    if (t.has_edge(e)) continue;
    graph_.occupy(e.from, net);
    graph_.occupy(e.to, net);
    t.edges.push_back(e);
    changed = true;
  }
  if (changed) notify_net(net);
}

void Fabric::remove_edges(NetId net, std::span<const RouteEdge> edges) {
  RELOGIC_CHECK_MSG(net_exists(net), "net does not exist");
  RouteTree& t = nets_[net];
  bool changed = false;
  for (const RouteEdge& e : edges) {
    auto it = std::find(t.edges.begin(), t.edges.end(), e);
    if (it == t.edges.end()) continue;
    t.edges.erase(it);
    changed = true;
  }
  if (!changed) return;
  // Release any node no longer referenced.
  std::unordered_set<NodeId> keep;
  for (NodeId n : t.sources) keep.insert(n);
  for (const auto& e : t.edges) {
    keep.insert(e.from);
    keep.insert(e.to);
  }
  for (const RouteEdge& e : edges) {
    for (NodeId n : {e.from, e.to}) {
      if (!keep.contains(n) && graph_.occupant(n) == net) graph_.release(n);
    }
  }
  notify_net(net);
}

std::vector<NodeId> Fabric::net_sinks(NetId net) const {
  const RouteTree& t = this->net(net);
  std::vector<NodeId> out;
  for (const auto& e : t.edges) {
    const NodeKind k = graph_.info(e.to).kind;
    if (k == NodeKind::kInPin ||
        (k == NodeKind::kPad && !t.has_source(e.to))) {
      out.push_back(e.to);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SinkDelay> Fabric::sink_delays(NetId net,
                                           const DelayModel& dm) const {
  const RouteTree& t = this->net(net);

  // Forward adjacency of the tree.
  std::unordered_map<NodeId, std::vector<NodeId>> adj;
  adj.reserve(t.edges.size());
  for (const auto& e : t.edges) adj[e.from].push_back(e.to);

  std::unordered_map<NodeId, SinkDelay> best;
  const std::vector<NodeId> sinks = net_sinks(net);
  std::unordered_set<NodeId> sink_set(sinks.begin(), sinks.end());

  // DFS from every source, accumulating delay; record min and max at sinks.
  struct Item {
    NodeId node;
    SimTime delay;
    int depth;
  };
  const int depth_limit = static_cast<int>(t.edges.size()) + 2;
  for (NodeId src : t.sources) {
    std::vector<Item> stack{{src, SimTime::zero(), 0}};
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      RELOGIC_CHECK_MSG(it.depth <= depth_limit,
                        "cycle detected in route tree of net " + t.name);
      if (sink_set.contains(it.node)) {
        auto [pos, inserted] =
            best.try_emplace(it.node, SinkDelay{it.node, it.delay, it.delay});
        if (!inserted) {
          pos->second.min = std::min(pos->second.min, it.delay);
          pos->second.max = std::max(pos->second.max, it.delay);
        }
      }
      auto a = adj.find(it.node);
      if (a == adj.end()) continue;
      for (NodeId next : a->second) {
        const SimTime d =
            it.delay + dm.pip_delay + dm.node_delay(graph_.info(next).kind);
        stack.push_back({next, d, it.depth + 1});
      }
    }
  }

  std::vector<SinkDelay> out;
  out.reserve(sinks.size());
  for (NodeId s : sinks) {
    auto it = best.find(s);
    RELOGIC_CHECK_MSG(it != best.end(),
                      "sink unreachable from any source in net " + t.name);
    out.push_back(it->second);
  }
  return out;
}

std::unordered_map<NodeId, SimTime> Fabric::node_delays(
    NetId net, const DelayModel& dm) const {
  const RouteTree& t = this->net(net);
  std::unordered_map<NodeId, std::vector<NodeId>> adj;
  for (const auto& e : t.edges) adj[e.from].push_back(e.to);

  std::unordered_map<NodeId, SimTime> out;
  struct Item {
    NodeId node;
    SimTime d;
    int depth;
  };
  const int limit = static_cast<int>(t.edges.size()) + 2;
  std::vector<Item> stack;
  for (NodeId s : t.sources) {
    out.try_emplace(s, SimTime::zero());
    stack.push_back({s, SimTime::zero(), 0});
  }
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    RELOGIC_CHECK_MSG(it.depth <= limit,
                      "cycle detected in route tree of net " + t.name);
    auto a = adj.find(it.node);
    if (a == adj.end()) continue;
    for (NodeId next : a->second) {
      const SimTime d =
          it.d + dm.pip_delay + dm.node_delay(graph_.info(next).kind);
      auto [pos, inserted] = out.try_emplace(next, d);
      if (!inserted) {
        if (d <= pos->second) continue;
        pos->second = d;
      }
      stack.push_back({next, d, it.depth + 1});
    }
  }
  return out;
}

void Fabric::validate_net(NetId net) const {
  const RouteTree& t = this->net(net);
  std::unordered_set<NodeId> driven(t.sources.begin(), t.sources.end());
  for (const auto& e : t.edges) driven.insert(e.to);
  for (const auto& e : t.edges) {
    if (!graph_.has_edge(e.from, e.to)) {
      throw IllegalOperationError("net " + t.name + ": edge is not a PIP: " +
                                  graph_.info(e.from).to_string() + " -> " +
                                  graph_.info(e.to).to_string());
    }
    if (!driven.contains(e.from)) {
      throw IllegalOperationError(
          "net " + t.name +
          ": dangling edge source: " + graph_.info(e.from).to_string());
    }
  }
  for (NodeId n : t.nodes()) {
    if (graph_.occupant(n) != net) {
      throw IllegalOperationError(
          "net " + t.name +
          ": tree node not occupied by the net: " + graph_.info(n).to_string());
    }
  }
}

NetId Fabric::net_driving(NodeId sink) const { return graph_.occupant(sink); }

Fabric::State Fabric::capture() const {
  return State{clbs_, nets_, net_alive_};
}

void Fabric::restore(const State& state) {
  RELOGIC_CHECK_MSG(state.clbs.size() == clbs_.size(),
                    "state captured from a different device");
  RELOGIC_CHECK_MSG(state.nets.size() <= nets_.size(),
                    "state mentions nets this fabric never created");

  // Cells: write through set_cell_config so identical values are no-ops.
  for (int row = 0; row < geom_.clb_rows; ++row) {
    for (int col = 0; col < geom_.clb_cols; ++col) {
      const ClbCoord c{row, col};
      const std::size_t idx =
          static_cast<std::size_t>(row) * geom_.clb_cols + col;
      for (int k = 0; k < geom_.cells_per_clb; ++k) {
        set_cell_config(c, k, state.clbs[idx].cells[static_cast<std::size_t>(k)]);
      }
    }
  }

  // Nets: release everything currently occupied, then re-occupy from the
  // snapshot. Notifications fire only for nets whose tree changed.
  for (NetId n = 1; n < nets_.size(); ++n) {
    if (net_alive_[n]) {
      for (NodeId node : nets_[n].nodes()) graph_.release(node);
    }
  }
  for (NetId n = 1; n < nets_.size(); ++n) {
    const bool will_live = n < state.nets.size() && state.net_alive[n];
    const RouteTree restored =
        will_live ? state.nets[n] : RouteTree{};
    const bool changed =
        nets_[n].sources != restored.sources || nets_[n].edges != restored.edges ||
        net_alive_[n] != will_live;
    nets_[n] = restored;
    net_alive_[n] = will_live;
    if (will_live) {
      for (NodeId node : nets_[n].nodes()) graph_.occupy(node, n);
    }
    if (changed) notify_net(n);
  }
}

void Fabric::notify_net(NetId net) {
  for (auto* l : listeners_) l->on_net_changed(net);
}

}  // namespace relogic::fabric
