// Logic cell configuration: the static (configuration-memory-held) part of
// one LUT4 + storage-element pair. A Virtex CLB contains four such cells
// (2 slices x 2), and the paper's relocation procedure treats each cell
// individually.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace relogic::fabric {

/// Storage element mode of a logic cell.
enum class RegMode : std::uint8_t {
  kNone,   ///< purely combinational: the cell output is the LUT output
  kFF,     ///< edge-triggered D flip-flop (optionally clock-enabled)
  kLatch,  ///< transparent data latch, gated by the CE pin (asynchronous use)
};

/// How the LUT is used.
enum class LutMode : std::uint8_t {
  kLogic,  ///< 16x1 truth table
  kRam,    ///< distributed RAM — NOT relocatable on-line (paper, Sec. 2)
};

/// Where the storage element's D input comes from. The bypass (the BX pin
/// of a Virtex slice) is what lets the auxiliary relocation circuit of
/// Fig. 3 feed a replica FF while its LUT keeps computing the cell's
/// combinational function.
enum class DSrc : std::uint8_t {
  kLut,     ///< D = LUT output (normal operation)
  kBypass,  ///< D = the BX input pin (temporary transfer path)
};

/// Configuration of one logic cell. Equality is bit-equality; the
/// configuration controller uses it to detect identical rewrites, which are
/// glitch-free by construction on the real device.
struct LogicCellConfig {
  /// Truth table: bit i gives the output for input vector i (I3..I0).
  std::uint16_t lut = 0;
  RegMode reg = RegMode::kNone;
  LutMode lut_mode = LutMode::kLogic;
  DSrc d_src = DSrc::kLut;
  /// When true the FF only captures when the CE input pin is high.
  bool uses_ce = false;
  /// Power-up / configuration value of the storage element.
  bool init = false;
  /// Global clock domain the storage element listens to.
  std::uint8_t clock_domain = 0;
  /// True if the cell is configured at all (occupies fabric resources).
  bool used = false;

  constexpr auto operator<=>(const LogicCellConfig&) const = default;

  /// Constant-driver helper: a used cell whose LUT outputs `value`
  /// regardless of inputs. Used for control signals that the paper drives
  /// "through the reconfiguration memory".
  static LogicCellConfig constant(bool value) {
    LogicCellConfig c;
    c.lut = value ? 0xFFFF : 0x0000;
    c.used = true;
    return c;
  }

  /// LUT evaluation on a 4-bit input vector (bit0 = I0).
  constexpr bool eval(unsigned input_vector) const {
    return ((lut >> (input_vector & 0xF)) & 1u) != 0;
  }
};

/// Upper bound on DeviceGeometry::cells_per_clb that the fabric can store.
/// Virtex CLBs hold 4 cells; denser (Virtex-II-style) geometries may ask for
/// up to 8. Storage is fixed-size so ClbConfig stays trivially copyable;
/// cells beyond the geometry's cells_per_clb remain default (unused).
inline constexpr int kMaxCellsPerClb = 8;

/// Configuration of one CLB: its logic cells (geometry decides how many of
/// the slots are real; the rest stay default-initialised and unused).
struct ClbConfig {
  std::array<LogicCellConfig, kMaxCellsPerClb> cells;

  constexpr auto operator<=>(const ClbConfig&) const = default;

  bool any_used() const {
    for (const auto& c : cells)
      if (c.used) return true;
    return false;
  }
  bool any_lut_ram() const {
    for (const auto& c : cells)
      if (c.used && c.lut_mode == LutMode::kRam) return true;
    return false;
  }
  int used_cells() const {
    int n = 0;
    for (const auto& c : cells) n += c.used ? 1 : 0;
    return n;
  }
};

/// A permanent configuration-memory defect of one logic cell: one LUT
/// truth-table bit reads back stuck at `stuck_value` no matter what is
/// written. This is the fault model of the roving on-line self-test
/// (relogic::health): structural, deterministic, and observable through a
/// write/readback mismatch — the way Gericota's companion DATE-era work
/// detects faults by sweeping a test region across the live fabric.
struct CellFault {
  std::uint8_t lut_bit = 0;  ///< which truth-table bit is stuck (0..15)
  bool stuck_value = false;

  constexpr auto operator<=>(const CellFault&) const = default;

  /// The value the configuration memory actually holds after `cfg` is
  /// written through this fault.
  LogicCellConfig corrupt(LogicCellConfig cfg) const {
    const std::uint16_t mask = static_cast<std::uint16_t>(1u << (lut_bit & 0xF));
    cfg.lut = stuck_value ? static_cast<std::uint16_t>(cfg.lut | mask)
                          : static_cast<std::uint16_t>(cfg.lut & ~mask);
    return cfg;
  }
};

/// Common LUT truth tables for up to 4 inputs (I0..I3).
namespace luts {
constexpr std::uint16_t kConst0 = 0x0000;
constexpr std::uint16_t kConst1 = 0xFFFF;
constexpr std::uint16_t kBufI0 = 0xAAAA;   ///< out = I0
constexpr std::uint16_t kNotI0 = 0x5555;   ///< out = !I0
constexpr std::uint16_t kAnd2 = 0x8888;    ///< out = I0 & I1
constexpr std::uint16_t kOr2 = 0xEEEE;     ///< out = I0 | I1
constexpr std::uint16_t kXor2 = 0x6666;    ///< out = I0 ^ I1
constexpr std::uint16_t kNand2 = 0x7777;   ///< out = !(I0 & I1)
constexpr std::uint16_t kNor2 = 0x1111;    ///< out = !(I0 | I1)
constexpr std::uint16_t kXnor2 = 0x9999;   ///< out = !(I0 ^ I1)
constexpr std::uint16_t kAnd3 = 0x8080;    ///< out = I0 & I1 & I2
constexpr std::uint16_t kOr3 = 0xFEFE;     ///< out = I0 | I1 | I2
/// out = I2 ? I1 : I0 — the 2:1 multiplexer of the auxiliary relocation
/// circuit (Fig. 3): select = I2, data0 = I0, data1 = I1.
constexpr std::uint16_t kMux21 = 0xCACA;
}  // namespace luts

inline std::string to_string(RegMode m) {
  switch (m) {
    case RegMode::kNone:
      return "none";
    case RegMode::kFF:
      return "ff";
    case RegMode::kLatch:
      return "latch";
  }
  return "?";
}

inline std::string to_string(LutMode m) {
  return m == LutMode::kLogic ? "logic" : "ram";
}

}  // namespace relogic::fabric
