// Simplified Virtex-style routing resource graph.
//
// Nodes are routing resources: logic-cell pins, single-length lines (span 1
// tile), hex lines (span 6 tiles), long lines (span a full row/column) and
// IOB pads. Directed edges are programmable interconnect points (PIPs).
//
// The graph is uniform and formula-addressable: node ids are computed from
// (tile, kind, index) so no per-node storage is needed for identity, and the
// configuration-frame mapper (relogic::config) can derive the frame that
// controls each PIP arithmetically.
//
// Connectivity model (documented substitution for the real Virtex switch
// matrix; see DESIGN.md §2):
//  * OMUX   — a cell output pin drives any single or hex line leaving its
//             tile.
//  * IMUX   — any single/hex/long arriving at a tile can drive any input
//             pin of that tile's cells.
//  * Switch — an arriving single continues straight on the same index, or
//             turns with index i or i^1; it can enter a hex line of index
//             i mod H; an arriving hex chains onward or fans out to singles.
//  * Longs  — driven from singles every `kLongTapSpacing` tiles, and can
//             drive singles at any tile they cross.
//  * Pads   — boundary-tile pads drive singles leaving the tile (input
//             pads) and are driven by singles arriving at it (output pads).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "relogic/common/geometry.hpp"
#include "relogic/fabric/device.hpp"

namespace relogic::fabric {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Net identifier. 0 means "no net".
using NetId = std::uint32_t;
inline constexpr NetId kNoNet = 0;

enum class NodeKind : std::uint8_t {
  kOutPin,   ///< cell output: X (combinational) or XQ (registered)
  kInPin,    ///< cell input: I0..I3 or CE
  kSingle,   ///< single-length line leaving its tile in one direction
  kHex,      ///< hex line leaving its tile in one direction
  kLongRow,  ///< long line spanning one row
  kLongCol,  ///< long line spanning one column
  kPad,      ///< IOB pad at a boundary tile
};

enum class Dir : std::uint8_t { kN = 0, kE = 1, kS = 2, kW = 3 };

/// Input ports of a logic cell. kBX is the storage-element bypass input
/// (the temporary transfer path target of the auxiliary relocation circuit).
enum class CellPort : std::uint8_t {
  kI0 = 0,
  kI1 = 1,
  kI2 = 2,
  kI3 = 3,
  kCE = 4,
  kBX = 5,
};
inline constexpr int kInPorts = 6;

/// Decoded identity of a node.
struct NodeInfo {
  NodeKind kind;
  ClbCoord tile;   ///< owning tile (for longs: row/col in .row/.col, other -1)
  std::uint8_t a;  ///< cell index (pins/pads), direction (wires), track (longs)
  std::uint8_t b;  ///< port/registered-flag (pins), wire index (wires)

  std::string to_string() const;
};

ClbCoord step(ClbCoord c, Dir d, int n = 1);
Dir opposite(Dir d);

class RoutingGraph {
 public:
  explicit RoutingGraph(const DeviceGeometry& geom);

  RoutingGraph(const RoutingGraph&) = delete;
  RoutingGraph& operator=(const RoutingGraph&) = delete;
  RoutingGraph(RoutingGraph&&) = default;
  RoutingGraph& operator=(RoutingGraph&&) = default;

  const DeviceGeometry& geometry() const { return *geom_; }
  std::size_t node_count() const { return node_count_; }

  // ---- node id construction -------------------------------------------
  NodeId out_pin(ClbCoord t, int cell, bool registered) const;
  NodeId in_pin(ClbCoord t, int cell, CellPort p) const;
  NodeId single(ClbCoord t, Dir d, int index) const;
  NodeId hex(ClbCoord t, Dir d, int index) const;
  NodeId long_row(int row, int track) const;
  NodeId long_col(int col, int track) const;
  NodeId pad(ClbCoord t, int index) const;

  NodeInfo info(NodeId n) const;

  /// The tile a wire leaving `t` in direction `d` with the given span lands
  /// in, clipped to the array; returns false if it leaves the device.
  bool wire_target(ClbCoord t, Dir d, int span, ClbCoord& out) const;

  // ---- adjacency --------------------------------------------------------
  std::span<const NodeId> fanout(NodeId n) const;
  /// True if a PIP from `from` to `to` exists.
  bool has_edge(NodeId from, NodeId to) const;

  // ---- occupancy ---------------------------------------------------------
  NetId occupant(NodeId n) const { return occupancy_[n]; }
  bool is_free(NodeId n) const { return occupancy_[n] == kNoNet; }
  /// Claims a node for a net. A node already held by the same net is fine
  /// (fanout trees and parallel relocation paths revisit nodes).
  void occupy(NodeId n, NetId net);
  void release(NodeId n);
  /// Number of currently occupied nodes (for utilisation metrics).
  std::size_t occupied_count() const { return occupied_count_; }

 private:
  void build_edges();
  void add_edge(NodeId from, NodeId to);

  const DeviceGeometry* geom_;
  int tile_stride_ = 0;
  std::size_t tile_nodes_ = 0;
  std::size_t long_row_base_ = 0;
  std::size_t long_col_base_ = 0;
  std::size_t pad_base_ = 0;
  std::size_t node_count_ = 0;

  // CSR adjacency.
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<NodeId> fanout_edges_;
  // Build-time staging (cleared after build).
  std::vector<std::vector<NodeId>> staging_;

  std::vector<NetId> occupancy_;
  std::size_t occupied_count_ = 0;
};

}  // namespace relogic::fabric
