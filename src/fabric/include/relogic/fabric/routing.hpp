// Simplified Virtex-style routing resource graph.
//
// Nodes are routing resources: logic-cell pins, single-length lines (span 1
// tile), hex lines (span 6 tiles), long lines (span a full row/column) and
// IOB pads. Directed edges are programmable interconnect points (PIPs).
//
// The graph is uniform and formula-addressable: node ids are computed from
// (tile, kind, index) so no per-node storage is needed for identity, and the
// configuration-frame mapper (relogic::config) can derive the frame that
// controls each PIP arithmetically.
//
// Connectivity model (documented substitution for the real Virtex switch
// matrix; see DESIGN.md §2):
//  * OMUX   — a cell output pin drives any single or hex line leaving its
//             tile.
//  * IMUX   — any single/hex/long arriving at a tile can drive any input
//             pin of that tile's cells.
//  * Switch — an arriving single continues straight on the same index, or
//             turns with index i or i^1; it can enter a hex line of index
//             i mod H; an arriving hex chains onward or fans out to singles.
//  * Longs  — driven from singles every `kLongTapSpacing` tiles, and can
//             drive singles at any tile they cross.
//  * Pads   — boundary-tile pads drive singles leaving the tile (input
//             pads) and are driven by singles arriving at it (output pads).
//
// Skeleton / overlay split (DESIGN.md §2 addendum): connectivity depends
// only on the DeviceGeometry, never on what is placed or routed, so it is
// factored into an immutable, shareable `RoutingSkeleton` (CSR adjacency +
// node-id layout) built once per geometry and held in a process-wide cache
// (`acquire_routing_skeleton`). The per-device `RoutingGraph` is reduced to
// a skeleton handle plus this device's mutable occupancy overlay, making
// `Fabric` bring-up O(nodes) instead of O(edges) after the first device of
// a geometry — the difference between ~100 ms and µs at XCV1000 scale.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "relogic/common/geometry.hpp"
#include "relogic/fabric/device.hpp"

namespace relogic::fabric {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Net identifier. 0 means "no net".
using NetId = std::uint32_t;
inline constexpr NetId kNoNet = 0;

enum class NodeKind : std::uint8_t {
  kOutPin,   ///< cell output: X (combinational) or XQ (registered)
  kInPin,    ///< cell input: I0..I3 or CE
  kSingle,   ///< single-length line leaving its tile in one direction
  kHex,      ///< hex line leaving its tile in one direction
  kLongRow,  ///< long line spanning one row
  kLongCol,  ///< long line spanning one column
  kPad,      ///< IOB pad at a boundary tile
};

enum class Dir : std::uint8_t { kN = 0, kE = 1, kS = 2, kW = 3 };

/// Input ports of a logic cell. kBX is the storage-element bypass input
/// (the temporary transfer path target of the auxiliary relocation circuit).
enum class CellPort : std::uint8_t {
  kI0 = 0,
  kI1 = 1,
  kI2 = 2,
  kI3 = 3,
  kCE = 4,
  kBX = 5,
};
inline constexpr int kInPorts = 6;

/// Decoded identity of a node.
struct NodeInfo {
  NodeKind kind;
  ClbCoord tile;   ///< owning tile (for longs: row/col in .row/.col, other -1)
  std::uint8_t a;  ///< cell index (pins/pads), direction (wires), track (longs)
  std::uint8_t b;  ///< port/registered-flag (pins), wire index (wires)

  std::string to_string() const;
};

ClbCoord step(ClbCoord c, Dir d, int n = 1);
Dir opposite(Dir d);

namespace detail {

/// Allocator that default-initializes on resize — for trivial element
/// types, resize() leaves the new elements uninitialized instead of
/// zero-filling them. The skeleton builders size their CSR arrays exactly
/// and then write every element, so the value-initializing resize() would
/// memset ~40 MB per array at XCV1000 only to overwrite it immediately.
template <class T, class A = std::allocator<T>>
class default_init_allocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <class U>
  struct rebind {
    using other =
        default_init_allocator<U, typename traits::template rebind_alloc<U>>;
  };
  using A::A;
  template <class U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    traits::construct(static_cast<A&>(*this), p, std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Edge storage of the CSR arrays (uninitialized-on-resize; see
/// detail::default_init_allocator).
using EdgeList = std::vector<NodeId, detail::default_init_allocator<NodeId>>;

/// Immutable connectivity skeleton of one device geometry: the node-id
/// layout and the full PIP adjacency in CSR form. A skeleton carries no
/// occupancy and never changes after construction, so one instance is
/// safely shared — without locking — by every Fabric of the same geometry
/// across all fleet worker threads.
///
/// The CSR keeps two views of each fanout row over one offsets array:
/// `fanout()` iterates the historical PIP-enumeration order — router
/// exploration order is part of the determinism contract (the fig5 bench
/// output is byte-pinned to it) — while `has_edge()` binary-searches a
/// row-sorted mirror, replacing the seed's linear membership scan.
class RoutingSkeleton {
 public:
  /// Builds a skeleton with the two-pass counting build: pass 1 counts each
  /// node's out-degree, a prefix sum sizes the CSR arrays exactly, pass 2
  /// fills edges in place; rows are then sorted. No per-node allocations.
  static std::shared_ptr<const RoutingSkeleton> build(
      const DeviceGeometry& geom);

  /// Reference builder: the seed's staging algorithm, verbatim —
  /// vector-of-vectors adjacency filled through the *checked public* node-id
  /// constructors, then flattened. Kept for the skeleton-cache audit and as
  /// the within-run baseline of the perf gate on the counting build.
  /// Deliberately does NOT share build()'s enumeration: its independent
  /// emission derives every id through the bounds-checked public API, so
  /// `same_adjacency` cross-checks both the CSR assembly and the hoisted
  /// unchecked id arithmetic the fast enumeration uses.
  static std::shared_ptr<const RoutingSkeleton> build_reference(
      const DeviceGeometry& geom);

  const DeviceGeometry& geometry() const { return geom_; }
  std::size_t node_count() const { return node_count_; }
  std::size_t edge_count() const { return fanout_edges_.size(); }

  // ---- node id construction -------------------------------------------
  NodeId out_pin(ClbCoord t, int cell, bool registered) const;
  NodeId in_pin(ClbCoord t, int cell, CellPort p) const;
  NodeId single(ClbCoord t, Dir d, int index) const;
  NodeId hex(ClbCoord t, Dir d, int index) const;
  NodeId long_row(int row, int track) const;
  NodeId long_col(int col, int track) const;
  NodeId pad(ClbCoord t, int index) const;

  NodeInfo info(NodeId n) const;

  /// The tile a wire leaving `t` in direction `d` with the given span lands
  /// in, clipped to the array; returns false if it leaves the device.
  bool wire_target(ClbCoord t, Dir d, int span, ClbCoord& out) const;

  // ---- adjacency --------------------------------------------------------
  /// Fanout in PIP-enumeration order (the order routers explore).
  std::span<const NodeId> fanout(NodeId n) const;
  /// True if a PIP from `from` to `to` exists. Binary search over the
  /// sorted row mirror.
  bool has_edge(NodeId from, NodeId to) const;

  /// Byte-identical adjacency (CSR offsets, edges, and the sorted mirror).
  /// Used by the skeleton-cache audit: a cached skeleton must equal a
  /// fresh single-use build.
  bool same_adjacency(const RoutingSkeleton& other) const {
    return fanout_offsets_ == other.fanout_offsets_ &&
           fanout_edges_ == other.fanout_edges_ &&
           sorted_edges_ == other.sorted_edges_;
  }

 private:
  /// Computes the node-id layout only; adjacency is filled by a builder.
  explicit RoutingSkeleton(const DeviceGeometry& geom);

  /// Emits every PIP as emit(from, to) in a deterministic order, forming
  /// ids by unchecked addition from hoisted per-tile bases (the loop
  /// structure guarantees bounds). Used by build(); ten million emissions
  /// per pass at XCV1000 made the checked constructors the dominant cost.
  template <class Emit>
  void enumerate_pips(Emit&& emit) const;

  /// enumerate_pips restricted to tiles in rows [row_begin, row_end) — the
  /// unit of work of the parallel fill. Every from-node is owned by one
  /// tile row except long-column lines, which every row crosses; their
  /// per-band write position is computable because each tile contributes a
  /// fixed number of edges to each long line it crosses.
  template <class Emit>
  void enumerate_pips_rows(int row_begin, int row_end, Emit&& emit) const;

  /// The seed's emission loop: same PIPs in the same order, but every id
  /// derived through the checked public constructors. Used by
  /// build_reference(); kept separate on purpose — agreement between the
  /// two enumerations is exactly what the cache audit verifies.
  template <class Emit>
  void enumerate_pips_reference(Emit&& emit) const;

  void build_sorted_mirror();

  DeviceGeometry geom_;
  int tile_stride_ = 0;
  std::size_t tile_nodes_ = 0;
  std::size_t long_row_base_ = 0;
  std::size_t long_col_base_ = 0;
  std::size_t pad_base_ = 0;
  std::size_t node_count_ = 0;

  // CSR adjacency in PIP-enumeration order, plus the row-sorted mirror for
  // membership tests; both share fanout_offsets_.
  std::vector<std::uint32_t> fanout_offsets_;
  EdgeList fanout_edges_;
  EdgeList sorted_edges_;
};

/// Returns the process-wide shared skeleton for `geom`, building it on the
/// first request for that geometry (keyed on every geometry field — `tiny`
/// and `tiny_dense` get distinct skeletons even where their routing pools
/// coincide). Thread-safe: fleet workers bringing up devices concurrently
/// serialize only on the cache map, and a skeleton is built exactly once.
/// In RELOGIC_AUDIT builds the first cache hit per entry cross-checks the
/// cached adjacency against a fresh single-use build.
std::shared_ptr<const RoutingSkeleton> acquire_routing_skeleton(
    const DeviceGeometry& geom);

/// Number of distinct geometries currently cached.
std::size_t routing_skeleton_cache_size();

/// Drops all cache entries (skeletons still referenced by live Fabrics
/// remain valid through their shared_ptr). Test hook — forces the next
/// acquire to take the cold path.
void clear_routing_skeleton_cache();

/// Cross-checks every cached skeleton against a fresh reference build,
/// throwing AuditError on the first divergence. Callable from any build
/// (tests invoke it directly); periodic call sites are RELOGIC_AUDIT-gated.
void audit_routing_skeleton_cache();

/// Per-device view of the routing pool: an immutable shared skeleton plus
/// this device's occupancy overlay (which net holds each node). All
/// connectivity queries forward to the skeleton; only occupy/release touch
/// device-local state, so constructing a RoutingGraph for a geometry whose
/// skeleton is already cached allocates just the occupancy vector.
class RoutingGraph {
 public:
  /// Acquires the shared skeleton for `geom` (building it if this is the
  /// first device of the geometry) and allocates an empty overlay.
  explicit RoutingGraph(const DeviceGeometry& geom);
  /// Wraps an already-acquired skeleton (fleet workers sharing one).
  explicit RoutingGraph(std::shared_ptr<const RoutingSkeleton> skeleton);

  RoutingGraph(const RoutingGraph&) = delete;
  RoutingGraph& operator=(const RoutingGraph&) = delete;
  RoutingGraph(RoutingGraph&&) = default;
  RoutingGraph& operator=(RoutingGraph&&) = default;

  /// The immutable connectivity this device shares with its geometry.
  const RoutingSkeleton& skeleton() const { return *skel_; }
  /// The owning handle (identity tested by the cache tests; lets callers
  /// hold connectivity past this graph's lifetime).
  const std::shared_ptr<const RoutingSkeleton>& skeleton_ptr() const {
    return skel_;
  }

  const DeviceGeometry& geometry() const { return skel_->geometry(); }
  std::size_t node_count() const { return skel_->node_count(); }

  // ---- node id construction (forwarded to the skeleton) -----------------
  NodeId out_pin(ClbCoord t, int cell, bool registered) const {
    return skel_->out_pin(t, cell, registered);
  }
  NodeId in_pin(ClbCoord t, int cell, CellPort p) const {
    return skel_->in_pin(t, cell, p);
  }
  NodeId single(ClbCoord t, Dir d, int index) const {
    return skel_->single(t, d, index);
  }
  NodeId hex(ClbCoord t, Dir d, int index) const {
    return skel_->hex(t, d, index);
  }
  NodeId long_row(int row, int track) const {
    return skel_->long_row(row, track);
  }
  NodeId long_col(int col, int track) const {
    return skel_->long_col(col, track);
  }
  NodeId pad(ClbCoord t, int index) const { return skel_->pad(t, index); }

  NodeInfo info(NodeId n) const { return skel_->info(n); }

  bool wire_target(ClbCoord t, Dir d, int span, ClbCoord& out) const {
    return skel_->wire_target(t, d, span, out);
  }

  // ---- adjacency (forwarded to the skeleton) ----------------------------
  std::span<const NodeId> fanout(NodeId n) const { return skel_->fanout(n); }
  bool has_edge(NodeId from, NodeId to) const {
    return skel_->has_edge(from, to);
  }

  // ---- occupancy (device-local overlay) ---------------------------------
  NetId occupant(NodeId n) const { return occupancy_[n]; }
  bool is_free(NodeId n) const { return occupancy_[n] == kNoNet; }
  /// Claims a node for a net. A node already held by the same net is fine
  /// (fanout trees and parallel relocation paths revisit nodes).
  void occupy(NodeId n, NetId net);
  void release(NodeId n);
  /// Number of currently occupied nodes (for utilisation metrics).
  std::size_t occupied_count() const { return occupied_count_; }

 private:
  std::shared_ptr<const RoutingSkeleton> skel_;
  std::vector<NetId> occupancy_;
  std::size_t occupied_count_ = 0;
};

}  // namespace relogic::fabric
