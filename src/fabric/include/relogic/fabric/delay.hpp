// Delay model for logic and routing resources.
//
// Values default to Virtex-class (-6 speed grade ballpark) numbers. The
// model is deliberately simple — a fixed traversal delay per resource kind
// plus a PIP (switch) delay per programmable connection — because the
// paper's timing arguments are structural: paralleled paths exhibit the
// *longer* of the two delays (Fig. 6), and relocation to distant CLBs
// lengthens paths proportionally to the number of segments crossed.
#pragma once

#include "relogic/common/time.hpp"
#include "relogic/fabric/routing.hpp"

#include <span>

namespace relogic::fabric {

struct DelayModel {
  SimTime lut_delay = SimTime::ps(560);      ///< LUT input to X output
  SimTime clk_to_q = SimTime::ps(720);       ///< clock edge to XQ output
  SimTime latch_d_to_q = SimTime::ps(650);   ///< transparent latch D to Q
  SimTime setup = SimTime::ps(450);          ///< FF setup time
  SimTime pip_delay = SimTime::ps(220);      ///< one programmable switch
  SimTime single_delay = SimTime::ps(380);   ///< single-length line
  SimTime hex_delay = SimTime::ps(950);      ///< hex line (6 tiles)
  SimTime long_delay = SimTime::ps(1900);    ///< long line (full row/col)
  SimTime pad_delay = SimTime::ps(800);      ///< IOB input/output buffer

  /// Wire traversal delay of a node (pins are free; the switch feeding a
  /// node is accounted separately via pip_delay).
  SimTime node_delay(NodeKind kind) const {
    switch (kind) {
      case NodeKind::kSingle:
        return single_delay;
      case NodeKind::kHex:
        return hex_delay;
      case NodeKind::kLongRow:
      case NodeKind::kLongCol:
        return long_delay;
      case NodeKind::kPad:
        return pad_delay;
      case NodeKind::kOutPin:
      case NodeKind::kInPin:
        return SimTime::zero();
    }
    return SimTime::zero();
  }

  /// Delay of a routed path given as a node sequence source..sink: one PIP
  /// per hop plus the traversal delay of each intermediate resource. Delay
  /// is a property of the connectivity alone, so the primary overload takes
  /// the immutable skeleton; the RoutingGraph form forwards for callers
  /// holding a device view.
  SimTime path_delay(const RoutingSkeleton& skeleton,
                     std::span<const NodeId> path) const;
  SimTime path_delay(const RoutingGraph& graph,
                     std::span<const NodeId> path) const {
    return path_delay(graph.skeleton(), path);
  }
};

}  // namespace relogic::fabric
