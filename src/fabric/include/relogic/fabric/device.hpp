// Device geometry: array dimensions, per-CLB cell count, routing-pool
// parameters and configuration-memory geometry for Virtex-style devices.
//
// The configuration-memory formulas follow the Virtex data sheet: one-bit
// wide vertical frames spanning the array top-to-bottom, grouped into
// columns; a CLB column holds 48 frames; the frame length is
// 18 * (rows + 2) bits rounded up to a whole number of 32-bit words.
#pragma once

#include <cstdint>
#include <string>

#include "relogic/common/geometry.hpp"

namespace relogic::fabric {

/// Named presets corresponding to the Xilinx Virtex family.
enum class DevicePreset {
  kXCV50,
  kXCV100,
  kXCV150,
  kXCV200,  // the device used in the paper's experiments
  kXCV300,
  kXCV400,
  kXCV600,
  kXCV800,
  kXCV1000,
  /// Synthetic beyond-family size point (no Virtex part this large existed;
  /// the 4000-class geometry extrapolates the XCV row/col progression) used
  /// to measure how the SoA/kernel data path scales past XCV1000.
  kXCV4000,
};

struct DeviceGeometry {
  std::string name = "XCV200";
  int clb_rows = 28;
  int clb_cols = 42;

  /// Logic cells per CLB (2 slices x 2 LUT/FF pairs in Virtex).
  int cells_per_clb = 4;

  // Routing pool parameters (simplified Virtex-style: single-length lines,
  // hex lines and long lines; see DESIGN.md section 3).
  int singles_per_dir = 8;
  int hexes_per_dir = 2;
  int longs_per_track = 2;
  /// Hex lines span this many tiles.
  int hex_span = 6;
  /// IOB pads available per boundary tile.
  int pads_per_tile = 2;

  // Configuration memory geometry (Virtex data sheet values).
  int frames_per_clb_column = 48;
  int frames_per_iob_column = 54;
  int frames_center_column = 8;
  /// Frames that hold a single logic cell's LUT/FF configuration within its
  /// CLB column (the remaining frames of the column carry routing bits).
  int frames_per_cell_config = 4;

  int clb_count() const { return clb_rows * clb_cols; }
  int cell_count() const { return clb_count() * cells_per_clb; }

  /// Frame length in bits: 18 bits per CLB row plus two pad rows (IOBs),
  /// rounded up to 32-bit configuration words.
  int frame_length_bits() const {
    const int raw = 18 * (clb_rows + 2);
    return ((raw + 31) / 32) * 32;
  }

  /// Total number of configuration frames across all column types.
  int total_frames() const {
    return frames_center_column + clb_cols * frames_per_clb_column +
           2 * frames_per_iob_column;
  }

  bool in_bounds(ClbCoord c) const {
    return c.row >= 0 && c.row < clb_rows && c.col >= 0 && c.col < clb_cols;
  }
  bool is_boundary(ClbCoord c) const {
    return c.row == 0 || c.col == 0 || c.row == clb_rows - 1 ||
           c.col == clb_cols - 1;
  }

  ClbRect full_rect() const { return ClbRect{0, 0, clb_rows, clb_cols}; }

  static DeviceGeometry preset(DevicePreset p);
  /// The paper's validation device.
  static DeviceGeometry xcv200() { return preset(DevicePreset::kXCV200); }
  /// A small device convenient for unit tests.
  static DeviceGeometry tiny(int rows = 8, int cols = 8);
  /// A Virtex-II-style dense variant: 8 logic cells per CLB (4 slices x 2).
  /// Exists to exercise configuration-layer code that must scale with
  /// cells_per_clb instead of assuming the Virtex value of 4 — notably the
  /// configuration controller's cell keys, whose old (col * 4 + cell)
  /// packing aliased distinct cells on exactly this geometry. NOTE: the
  /// routing pool still models 4 cells of pins per tile, so dense
  /// geometries are for fabric/config-level tests, not place-and-route.
  static DeviceGeometry tiny_dense(int rows = 8, int cols = 8);
};

}  // namespace relogic::fabric
