// Fabric: the authoritative structural state of the device.
//
// Holds every CLB's configuration and every net's routing (a RouteTree of
// occupied graph nodes). All mutations go through Fabric methods so that:
//  * identical rewrites are detected (they change nothing and — exactly as
//    on the real device — generate no events in the simulator), and
//  * registered listeners (the logic simulator, the configuration-port cost
//    accountant) observe every effective change.
//
// During a relocation a net may temporarily have several sources (original
// and replica cell outputs paralleled) and several paths to one sink
// (original and replica routes paralleled); RouteTree supports both, which
// is what makes the two-phase procedure of the paper expressible.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "relogic/common/error.hpp"
#include "relogic/common/geometry.hpp"
#include "relogic/fabric/cell.hpp"
#include "relogic/fabric/delay.hpp"
#include "relogic/fabric/device.hpp"
#include "relogic/fabric/routing.hpp"

namespace relogic::fabric {

/// One programmable connection in use: signal flows `from` -> `to`.
struct RouteEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  constexpr auto operator<=>(const RouteEdge&) const = default;
};

/// Routing state of one net.
struct RouteTree {
  std::string name;
  /// Driving nodes (cell output pins or input pads). More than one source
  /// is legal only while a relocation parallels original and replica.
  std::vector<NodeId> sources;
  std::vector<RouteEdge> edges;

  bool has_source(NodeId n) const;
  bool has_edge(RouteEdge e) const;
  /// All nodes referenced by the tree (sources and edge endpoints), deduped.
  std::vector<NodeId> nodes() const;
};

/// Delay of one sink of a net. While original and replica paths are
/// paralleled min != max: the observable value settles only after `max`
/// (the fuzziness interval of Fig. 6 spans [min, max]).
struct SinkDelay {
  NodeId sink = kInvalidNode;
  SimTime min = SimTime::zero();
  SimTime max = SimTime::zero();
};

/// Observer of effective fabric changes.
class FabricListener {
 public:
  virtual ~FabricListener() = default;
  virtual void on_cell_changed(ClbCoord clb, int cell,
                               const LogicCellConfig& before,
                               const LogicCellConfig& after) = 0;
  virtual void on_net_changed(NetId net) = 0;
};

class Fabric {
 public:
  explicit Fabric(DeviceGeometry geometry);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const DeviceGeometry& geometry() const { return geom_; }
  RoutingGraph& graph() { return graph_; }
  const RoutingGraph& graph() const { return graph_; }
  /// The immutable connectivity skeleton this device shares with every
  /// other Fabric of the same geometry (see acquire_routing_skeleton).
  const RoutingSkeleton& skeleton() const { return graph_.skeleton(); }

  // ---- listeners ---------------------------------------------------------
  void add_listener(FabricListener* listener);
  void remove_listener(FabricListener* listener);

  // ---- logic cells -------------------------------------------------------
  const ClbConfig& clb(ClbCoord c) const;
  const LogicCellConfig& cell(ClbCoord c, int cell) const;

  /// Writes a cell configuration. Returns true if the stored value changed
  /// (an identical rewrite returns false and notifies nobody — the
  /// glitch-free-rewrite property of the configuration memory).
  bool set_cell_config(ClbCoord c, int cell, const LogicCellConfig& cfg);

  /// Clears a cell (marks unused). Returns true if it was used.
  bool clear_cell(ClbCoord c, int cell);

  // ---- fault injection ---------------------------------------------------
  /// Installs a permanent configuration-memory defect on one cell: every
  /// subsequent write to that cell stores CellFault::corrupt(cfg) instead
  /// of cfg, so readback (cell()) exposes the mismatch — the observable the
  /// roving self-test (relogic::health) detects. Injecting over an existing
  /// fault replaces it; the currently stored config is re-corrupted so the
  /// fabric never holds a value the fault could not have produced.
  void inject_fault(ClbCoord c, int cell, CellFault fault);
  /// The fault installed on a cell, if any.
  const CellFault* fault_at(ClbCoord c, int cell) const;
  int injected_fault_count() const { return static_cast<int>(faults_.size()); }
  /// Linear cell indices ((row * cols + col) * cells_per_clb + cell) of
  /// every injected fault, sorted ascending. Lets the config plane's SoA
  /// fault-mask column resync without probing fault_at per cell.
  std::vector<int> fault_cell_indices() const;

  /// True if no cell of the CLB is configured.
  bool clb_free(ClbCoord c) const { return !clb(c).any_used(); }
  /// Number of used cells across the device.
  int used_cell_count() const { return used_cells_; }

  /// Live LUT-RAM cells stored in one CLB column. Maintained incrementally
  /// by set_cell_config (every cell mutation funnels through it, including
  /// restore() and fault injection), so the configuration controller's
  /// per-op LUT-RAM column legality check can skip clean columns without
  /// scanning rows x cells — the hot-path cost that used to dominate
  /// ConfigController::apply on large devices.
  int live_lut_ram_in_col(int col) const {
    return lut_ram_per_col_[static_cast<std::size_t>(col)];
  }
  /// Live LUT-RAM cells device-wide — lets the config legality check skip
  /// its per-column scan entirely on LUT-RAM-free fabrics.
  int live_lut_ram_total() const { return live_lut_ram_total_; }

  // ---- nets ----------------------------------------------------------------
  /// Creates an empty net and returns its id (ids start at 1).
  NetId create_net(std::string name);
  /// Deletes a net, releasing all its routing resources.
  void destroy_net(NetId net);
  bool net_exists(NetId net) const;
  const RouteTree& net(NetId net) const;
  NetId net_count() const { return static_cast<NetId>(nets_.size() - 1); }
  /// Ids of all live nets.
  std::vector<NetId> live_nets() const;

  void attach_source(NetId net, NodeId source);
  void detach_source(NetId net, NodeId source);

  /// Adds routing edges (PIPs) to a net. Every referenced node is claimed
  /// for the net; claiming a node held by a different net throws.
  void add_edges(NetId net, std::span<const RouteEdge> edges);
  void add_edge(NetId net, RouteEdge e) { add_edges(net, {&e, 1}); }

  /// Removes routing edges from a net; nodes no longer referenced by the
  /// remaining tree are released.
  void remove_edges(NetId net, std::span<const RouteEdge> edges);
  void remove_edge(NetId net, RouteEdge e) { remove_edges(net, {&e, 1}); }

  /// Sink nodes (input pins / pads) currently reached by the net.
  std::vector<NodeId> net_sinks(NetId net) const;

  /// Per-sink min/max propagation delay from any source (Fig. 6 semantics;
  /// see SinkDelay). Throws if the tree contains a cycle.
  std::vector<SinkDelay> sink_delays(NetId net, const DelayModel& dm) const;

  /// Worst-case delay from any source to every node of the tree (used by
  /// the routing-optimisation pass to price candidate attachment points).
  std::unordered_map<NodeId, SimTime> node_delays(NetId net,
                                                  const DelayModel& dm) const;

  /// Structural sanity: every edge is a real PIP, every edge source is
  /// driven (a net source or the target of another edge), every node in the
  /// tree is occupied by this net. Throws IllegalOperationError on
  /// violation. Used by tests and after every relocation step.
  void validate_net(NetId net) const;

  /// Which net, if any, drives the given input pin / pad.
  NetId net_driving(NodeId sink) const;

  // ---- state capture (recovery copy) --------------------------------------
  /// Complete structural state: the "complete copy of the current
  /// configuration" the paper's tool keeps for system recovery.
  struct State {
    std::vector<ClbConfig> clbs;
    std::vector<RouteTree> nets;
    std::vector<bool> net_alive;
  };
  State capture() const;
  /// Restores a captured state, emitting change notifications only for
  /// cells/nets that actually differ (identical state restores are no-ops).
  void restore(const State& state);

 private:
  void notify_net(NetId net);
  LogicCellConfig& mutable_cell(ClbCoord c, int cell);
  int cell_index(ClbCoord c, int cell) const {
    return (c.row * geom_.clb_cols + c.col) * geom_.cells_per_clb + cell;
  }

  DeviceGeometry geom_;
  RoutingGraph graph_;
  std::vector<ClbConfig> clbs_;
  /// Per-CLB-column count of live LUT-RAM cells (see live_lut_ram_in_col).
  std::vector<int> lut_ram_per_col_;
  int live_lut_ram_total_ = 0;
  /// Injected configuration-memory defects, keyed by linear cell index.
  std::unordered_map<int, CellFault> faults_;
  std::vector<RouteTree> nets_;     // index 0 unused
  std::vector<bool> net_alive_;     // parallel to nets_
  std::vector<FabricListener*> listeners_;
  int used_cells_ = 0;
};

}  // namespace relogic::fabric
