#include "relogic/fabric/routing.hpp"

#include <algorithm>

#include "relogic/common/error.hpp"

namespace relogic::fabric {

namespace {
/// Long lines are tappable from singles every this many tiles.
constexpr int kLongTapSpacing = 3;

constexpr int kOutPinsPerTile = 4 * 2;              // 4 cells x {X, XQ}
constexpr int kInPinsPerTile = 4 * kInPorts;        // 4 cells x {I0..I3, CE}
}  // namespace

ClbCoord step(ClbCoord c, Dir d, int n) {
  switch (d) {
    case Dir::kN:
      return ClbCoord{c.row - n, c.col};
    case Dir::kE:
      return ClbCoord{c.row, c.col + n};
    case Dir::kS:
      return ClbCoord{c.row + n, c.col};
    case Dir::kW:
      return ClbCoord{c.row, c.col - n};
  }
  return c;
}

Dir opposite(Dir d) {
  return static_cast<Dir>((static_cast<int>(d) + 2) % 4);
}

std::string NodeInfo::to_string() const {
  switch (kind) {
    case NodeKind::kOutPin:
      return tile.to_string() + ".cell" + std::to_string(a) +
             (b ? ".XQ" : ".X");
    case NodeKind::kInPin: {
      static const char* ports[] = {"I0", "I1", "I2", "I3", "CE", "BX"};
      return tile.to_string() + ".cell" + std::to_string(a) + "." + ports[b];
    }
    case NodeKind::kSingle:
      return tile.to_string() + ".S" + "NESW"[a] + std::to_string(b);
    case NodeKind::kHex:
      return tile.to_string() + ".H" + "NESW"[a] + std::to_string(b);
    case NodeKind::kLongRow:
      return "LR" + std::to_string(tile.row) + "." + std::to_string(a);
    case NodeKind::kLongCol:
      return "LC" + std::to_string(tile.col) + "." + std::to_string(a);
    case NodeKind::kPad:
      return tile.to_string() + ".PAD" + std::to_string(a);
  }
  return "?";
}

RoutingGraph::RoutingGraph(const DeviceGeometry& geom) : geom_(&geom) {
  const int s = geom.singles_per_dir;
  const int h = geom.hexes_per_dir;
  tile_stride_ = kOutPinsPerTile + kInPinsPerTile + 4 * s + 4 * h;
  tile_nodes_ =
      static_cast<std::size_t>(geom.clb_rows) * geom.clb_cols * tile_stride_;
  long_row_base_ = tile_nodes_;
  long_col_base_ =
      long_row_base_ + static_cast<std::size_t>(geom.clb_rows) *
                           geom.longs_per_track;
  pad_base_ = long_col_base_ + static_cast<std::size_t>(geom.clb_cols) *
                                   geom.longs_per_track;
  node_count_ = pad_base_ + static_cast<std::size_t>(geom.clb_rows) *
                                geom.clb_cols * geom.pads_per_tile;

  occupancy_.assign(node_count_, kNoNet);
  build_edges();
}

NodeId RoutingGraph::out_pin(ClbCoord t, int cell, bool registered) const {
  RELOGIC_CHECK(geom_->in_bounds(t) && cell >= 0 && cell < 4);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_->clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + cell * 2 + (registered ? 1 : 0));
}

NodeId RoutingGraph::in_pin(ClbCoord t, int cell, CellPort p) const {
  RELOGIC_CHECK(geom_->in_bounds(t) && cell >= 0 && cell < 4);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_->clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + kOutPinsPerTile + cell * kInPorts +
                             static_cast<int>(p));
}

NodeId RoutingGraph::single(ClbCoord t, Dir d, int index) const {
  RELOGIC_CHECK(geom_->in_bounds(t) && index >= 0 &&
                index < geom_->singles_per_dir);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_->clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + kOutPinsPerTile + kInPinsPerTile +
                             static_cast<int>(d) * geom_->singles_per_dir +
                             index);
}

NodeId RoutingGraph::hex(ClbCoord t, Dir d, int index) const {
  RELOGIC_CHECK(geom_->in_bounds(t) && index >= 0 &&
                index < geom_->hexes_per_dir);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_->clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + kOutPinsPerTile + kInPinsPerTile +
                             4 * geom_->singles_per_dir +
                             static_cast<int>(d) * geom_->hexes_per_dir +
                             index);
}

NodeId RoutingGraph::long_row(int row, int track) const {
  RELOGIC_CHECK(row >= 0 && row < geom_->clb_rows && track >= 0 &&
                track < geom_->longs_per_track);
  return static_cast<NodeId>(long_row_base_ +
                             static_cast<std::size_t>(row) *
                                 geom_->longs_per_track +
                             track);
}

NodeId RoutingGraph::long_col(int col, int track) const {
  RELOGIC_CHECK(col >= 0 && col < geom_->clb_cols && track >= 0 &&
                track < geom_->longs_per_track);
  return static_cast<NodeId>(long_col_base_ +
                             static_cast<std::size_t>(col) *
                                 geom_->longs_per_track +
                             track);
}

NodeId RoutingGraph::pad(ClbCoord t, int index) const {
  RELOGIC_CHECK(geom_->in_bounds(t) && index >= 0 &&
                index < geom_->pads_per_tile);
  RELOGIC_CHECK_MSG(geom_->is_boundary(t), "pads exist only at the periphery");
  return static_cast<NodeId>(
      pad_base_ +
      (static_cast<std::size_t>(t.row) * geom_->clb_cols + t.col) *
          geom_->pads_per_tile +
      index);
}

NodeInfo RoutingGraph::info(NodeId n) const {
  RELOGIC_CHECK(n < node_count_);
  NodeInfo r{};
  if (n < tile_nodes_) {
    const std::size_t tile_index = n / tile_stride_;
    const int within = static_cast<int>(n % tile_stride_);
    r.tile = ClbCoord{static_cast<int>(tile_index) / geom_->clb_cols,
                      static_cast<int>(tile_index) % geom_->clb_cols};
    if (within < kOutPinsPerTile) {
      r.kind = NodeKind::kOutPin;
      r.a = static_cast<std::uint8_t>(within / 2);
      r.b = static_cast<std::uint8_t>(within % 2);
    } else if (within < kOutPinsPerTile + kInPinsPerTile) {
      const int w = within - kOutPinsPerTile;
      r.kind = NodeKind::kInPin;
      r.a = static_cast<std::uint8_t>(w / kInPorts);
      r.b = static_cast<std::uint8_t>(w % kInPorts);
    } else if (within <
               kOutPinsPerTile + kInPinsPerTile + 4 * geom_->singles_per_dir) {
      const int w = within - kOutPinsPerTile - kInPinsPerTile;
      r.kind = NodeKind::kSingle;
      r.a = static_cast<std::uint8_t>(w / geom_->singles_per_dir);
      r.b = static_cast<std::uint8_t>(w % geom_->singles_per_dir);
    } else {
      const int w = within - kOutPinsPerTile - kInPinsPerTile -
                    4 * geom_->singles_per_dir;
      r.kind = NodeKind::kHex;
      r.a = static_cast<std::uint8_t>(w / geom_->hexes_per_dir);
      r.b = static_cast<std::uint8_t>(w % geom_->hexes_per_dir);
    }
    return r;
  }
  if (n < long_col_base_) {
    const std::size_t w = n - long_row_base_;
    r.kind = NodeKind::kLongRow;
    r.tile = ClbCoord{static_cast<int>(w / geom_->longs_per_track), -1};
    r.a = static_cast<std::uint8_t>(w % geom_->longs_per_track);
    return r;
  }
  if (n < pad_base_) {
    const std::size_t w = n - long_col_base_;
    r.kind = NodeKind::kLongCol;
    r.tile = ClbCoord{-1, static_cast<int>(w / geom_->longs_per_track)};
    r.a = static_cast<std::uint8_t>(w % geom_->longs_per_track);
    return r;
  }
  const std::size_t w = n - pad_base_;
  const std::size_t tile_index = w / geom_->pads_per_tile;
  r.kind = NodeKind::kPad;
  r.tile = ClbCoord{static_cast<int>(tile_index) / geom_->clb_cols,
                    static_cast<int>(tile_index) % geom_->clb_cols};
  r.a = static_cast<std::uint8_t>(w % geom_->pads_per_tile);
  return r;
}

bool RoutingGraph::wire_target(ClbCoord t, Dir d, int span,
                               ClbCoord& out) const {
  ClbCoord far = step(t, d, span);
  if (!geom_->in_bounds(far)) return false;
  out = far;
  return true;
}

std::span<const NodeId> RoutingGraph::fanout(NodeId n) const {
  RELOGIC_CHECK(n < node_count_);
  const auto begin = fanout_offsets_[n];
  const auto end = fanout_offsets_[n + 1];
  return {fanout_edges_.data() + begin, fanout_edges_.data() + end};
}

bool RoutingGraph::has_edge(NodeId from, NodeId to) const {
  const auto fo = fanout(from);
  return std::find(fo.begin(), fo.end(), to) != fo.end();
}

void RoutingGraph::occupy(NodeId n, NetId net) {
  RELOGIC_CHECK(n < node_count_ && net != kNoNet);
  RELOGIC_CHECK_MSG(occupancy_[n] == kNoNet || occupancy_[n] == net,
                    "routing node " + info(n).to_string() +
                        " already occupied by another net");
  if (occupancy_[n] == kNoNet) ++occupied_count_;
  occupancy_[n] = net;
}

void RoutingGraph::release(NodeId n) {
  RELOGIC_CHECK(n < node_count_);
  if (occupancy_[n] != kNoNet) --occupied_count_;
  occupancy_[n] = kNoNet;
}

void RoutingGraph::add_edge(NodeId from, NodeId to) {
  staging_[from].push_back(to);
}

void RoutingGraph::build_edges() {
  const DeviceGeometry& g = *geom_;
  const int s = g.singles_per_dir;
  const int h = g.hexes_per_dir;
  staging_.assign(node_count_, {});

  for (int row = 0; row < g.clb_rows; ++row) {
    for (int col = 0; col < g.clb_cols; ++col) {
      const ClbCoord t{row, col};

      // OMUX: every cell output drives every single and hex leaving its tile.
      for (int cell = 0; cell < 4; ++cell) {
        for (int q = 0; q < 2; ++q) {
          const NodeId out = out_pin(t, cell, q != 0);
          for (int d = 0; d < 4; ++d) {
            for (int i = 0; i < s; ++i)
              add_edge(out, single(t, static_cast<Dir>(d), i));
            for (int i = 0; i < h; ++i)
              add_edge(out, hex(t, static_cast<Dir>(d), i));
          }
        }
      }

      // Input pads drive singles leaving the tile.
      if (g.is_boundary(t)) {
        for (int p = 0; p < g.pads_per_tile; ++p) {
          const NodeId pd = pad(t, p);
          for (int d = 0; d < 4; ++d)
            for (int i = 0; i < s; ++i)
              add_edge(pd, single(t, static_cast<Dir>(d), i));
        }
      }

      for (int d = 0; d < 4; ++d) {
        const Dir dir = static_cast<Dir>(d);

        // Singles leaving tile t land in the neighbouring tile.
        ClbCoord far;
        if (wire_target(t, dir, 1, far)) {
          for (int i = 0; i < s; ++i) {
            const NodeId w = single(t, dir, i);
            // IMUX at the far tile: any input pin.
            for (int cell = 0; cell < 4; ++cell)
              for (int p = 0; p < kInPorts; ++p)
                add_edge(w, in_pin(far, cell, static_cast<CellPort>(p)));
            // Output pads at the far tile.
            if (g.is_boundary(far))
              for (int p = 0; p < g.pads_per_tile; ++p)
                add_edge(w, pad(far, p));
            // Switch matrix: straight, and turns on index i and i^1.
            add_edge(w, single(far, dir, i));
            for (int turn : {1, 3}) {
              const Dir nd = static_cast<Dir>((d + turn) % 4);
              add_edge(w, single(far, nd, i));
              if ((i ^ 1) < s) add_edge(w, single(far, nd, i ^ 1));
            }
            // Entry into hex lines.
            add_edge(w, hex(far, dir, i % h));
            // Taps onto long lines at spaced tiles.
            if ((far.col % kLongTapSpacing) == 0)
              for (int tr = 0; tr < g.longs_per_track; ++tr)
                add_edge(w, long_row(far.row, tr));
            if ((far.row % kLongTapSpacing) == 0)
              for (int tr = 0; tr < g.longs_per_track; ++tr)
                add_edge(w, long_col(far.col, tr));
          }

          // Hex lines land hex_span tiles away (clipped hexes do not exist).
          ClbCoord hex_far;
          if (wire_target(t, dir, g.hex_span, hex_far)) {
            for (int i = 0; i < h; ++i) {
              const NodeId w = hex(t, dir, i);
              for (int cell = 0; cell < 4; ++cell)
                for (int p = 0; p < kInPorts; ++p)
                  add_edge(w, in_pin(hex_far, cell, static_cast<CellPort>(p)));
              // Chain onward or fan out to singles.
              add_edge(w, hex(hex_far, dir, i));
              for (int dd = 0; dd < 4; ++dd)
                for (int j = 0; j < std::min(s, 4); ++j)
                  add_edge(w, single(hex_far, static_cast<Dir>(dd), j));
            }
          }
        }
      }

      // Long lines drive singles at every tile they cross.
      for (int tr = 0; tr < g.longs_per_track; ++tr) {
        for (int d = 0; d < 4; ++d)
          for (int j = 0; j < std::min(s, 2); ++j) {
            add_edge(long_row(row, tr), single(t, static_cast<Dir>(d), j));
            add_edge(long_col(col, tr), single(t, static_cast<Dir>(d), j));
          }
      }
    }
  }

  // Flatten to CSR.
  fanout_offsets_.assign(node_count_ + 1, 0);
  std::size_t total = 0;
  for (std::size_t n = 0; n < node_count_; ++n) {
    fanout_offsets_[n] = static_cast<std::uint32_t>(total);
    total += staging_[n].size();
  }
  fanout_offsets_[node_count_] = static_cast<std::uint32_t>(total);
  fanout_edges_.reserve(total);
  for (std::size_t n = 0; n < node_count_; ++n) {
    fanout_edges_.insert(fanout_edges_.end(), staging_[n].begin(),
                         staging_[n].end());
  }
  staging_.clear();
  staging_.shrink_to_fit();
}

}  // namespace relogic::fabric
