#include "relogic/fabric/routing.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "relogic/common/audit.hpp"
#include "relogic/common/error.hpp"
#include "relogic/common/thread_annotations.hpp"

namespace relogic::fabric {

namespace {
/// Long lines are tappable from singles every this many tiles.
constexpr int kLongTapSpacing = 3;

constexpr int kOutPinsPerTile = 4 * 2;              // 4 cells x {X, XQ}
constexpr int kInPinsPerTile = 4 * kInPorts;        // 4 cells x {I0..I3, CE}
}  // namespace

ClbCoord step(ClbCoord c, Dir d, int n) {
  switch (d) {
    case Dir::kN:
      return ClbCoord{c.row - n, c.col};
    case Dir::kE:
      return ClbCoord{c.row, c.col + n};
    case Dir::kS:
      return ClbCoord{c.row + n, c.col};
    case Dir::kW:
      return ClbCoord{c.row, c.col - n};
  }
  return c;
}

Dir opposite(Dir d) {
  return static_cast<Dir>((static_cast<int>(d) + 2) % 4);
}

std::string NodeInfo::to_string() const {
  switch (kind) {
    case NodeKind::kOutPin:
      return tile.to_string() + ".cell" + std::to_string(a) +
             (b ? ".XQ" : ".X");
    case NodeKind::kInPin: {
      static const char* ports[] = {"I0", "I1", "I2", "I3", "CE", "BX"};
      return tile.to_string() + ".cell" + std::to_string(a) + "." + ports[b];
    }
    case NodeKind::kSingle:
      return tile.to_string() + ".S" + "NESW"[a] + std::to_string(b);
    case NodeKind::kHex:
      return tile.to_string() + ".H" + "NESW"[a] + std::to_string(b);
    case NodeKind::kLongRow:
      return "LR" + std::to_string(tile.row) + "." + std::to_string(a);
    case NodeKind::kLongCol:
      return "LC" + std::to_string(tile.col) + "." + std::to_string(a);
    case NodeKind::kPad:
      return tile.to_string() + ".PAD" + std::to_string(a);
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RoutingSkeleton — node-id layout
// ---------------------------------------------------------------------------

RoutingSkeleton::RoutingSkeleton(const DeviceGeometry& geom) : geom_(geom) {
  const int s = geom_.singles_per_dir;
  const int h = geom_.hexes_per_dir;
  tile_stride_ = kOutPinsPerTile + kInPinsPerTile + 4 * s + 4 * h;
  tile_nodes_ = static_cast<std::size_t>(geom_.clb_rows) * geom_.clb_cols *
                tile_stride_;
  long_row_base_ = tile_nodes_;
  long_col_base_ =
      long_row_base_ + static_cast<std::size_t>(geom_.clb_rows) *
                           geom_.longs_per_track;
  pad_base_ = long_col_base_ + static_cast<std::size_t>(geom_.clb_cols) *
                                   geom_.longs_per_track;
  node_count_ = pad_base_ + static_cast<std::size_t>(geom_.clb_rows) *
                                geom_.clb_cols * geom_.pads_per_tile;
}

NodeId RoutingSkeleton::out_pin(ClbCoord t, int cell, bool registered) const {
  RELOGIC_CHECK(geom_.in_bounds(t) && cell >= 0 && cell < 4);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_.clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + cell * 2 + (registered ? 1 : 0));
}

NodeId RoutingSkeleton::in_pin(ClbCoord t, int cell, CellPort p) const {
  RELOGIC_CHECK(geom_.in_bounds(t) && cell >= 0 && cell < 4);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_.clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + kOutPinsPerTile + cell * kInPorts +
                             static_cast<int>(p));
}

NodeId RoutingSkeleton::single(ClbCoord t, Dir d, int index) const {
  RELOGIC_CHECK(geom_.in_bounds(t) && index >= 0 &&
                index < geom_.singles_per_dir);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_.clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + kOutPinsPerTile + kInPinsPerTile +
                             static_cast<int>(d) * geom_.singles_per_dir +
                             index);
}

NodeId RoutingSkeleton::hex(ClbCoord t, Dir d, int index) const {
  RELOGIC_CHECK(geom_.in_bounds(t) && index >= 0 &&
                index < geom_.hexes_per_dir);
  const std::size_t base =
      (static_cast<std::size_t>(t.row) * geom_.clb_cols + t.col) *
      tile_stride_;
  return static_cast<NodeId>(base + kOutPinsPerTile + kInPinsPerTile +
                             4 * geom_.singles_per_dir +
                             static_cast<int>(d) * geom_.hexes_per_dir +
                             index);
}

NodeId RoutingSkeleton::long_row(int row, int track) const {
  RELOGIC_CHECK(row >= 0 && row < geom_.clb_rows && track >= 0 &&
                track < geom_.longs_per_track);
  return static_cast<NodeId>(long_row_base_ +
                             static_cast<std::size_t>(row) *
                                 geom_.longs_per_track +
                             track);
}

NodeId RoutingSkeleton::long_col(int col, int track) const {
  RELOGIC_CHECK(col >= 0 && col < geom_.clb_cols && track >= 0 &&
                track < geom_.longs_per_track);
  return static_cast<NodeId>(long_col_base_ +
                             static_cast<std::size_t>(col) *
                                 geom_.longs_per_track +
                             track);
}

NodeId RoutingSkeleton::pad(ClbCoord t, int index) const {
  RELOGIC_CHECK(geom_.in_bounds(t) && index >= 0 &&
                index < geom_.pads_per_tile);
  RELOGIC_CHECK_MSG(geom_.is_boundary(t), "pads exist only at the periphery");
  return static_cast<NodeId>(
      pad_base_ +
      (static_cast<std::size_t>(t.row) * geom_.clb_cols + t.col) *
          geom_.pads_per_tile +
      index);
}

NodeInfo RoutingSkeleton::info(NodeId n) const {
  RELOGIC_CHECK(n < node_count_);
  NodeInfo r{};
  if (n < tile_nodes_) {
    const std::size_t tile_index = n / tile_stride_;
    const int within = static_cast<int>(n % tile_stride_);
    r.tile = ClbCoord{static_cast<int>(tile_index) / geom_.clb_cols,
                      static_cast<int>(tile_index) % geom_.clb_cols};
    if (within < kOutPinsPerTile) {
      r.kind = NodeKind::kOutPin;
      r.a = static_cast<std::uint8_t>(within / 2);
      r.b = static_cast<std::uint8_t>(within % 2);
    } else if (within < kOutPinsPerTile + kInPinsPerTile) {
      const int w = within - kOutPinsPerTile;
      r.kind = NodeKind::kInPin;
      r.a = static_cast<std::uint8_t>(w / kInPorts);
      r.b = static_cast<std::uint8_t>(w % kInPorts);
    } else if (within <
               kOutPinsPerTile + kInPinsPerTile + 4 * geom_.singles_per_dir) {
      const int w = within - kOutPinsPerTile - kInPinsPerTile;
      r.kind = NodeKind::kSingle;
      r.a = static_cast<std::uint8_t>(w / geom_.singles_per_dir);
      r.b = static_cast<std::uint8_t>(w % geom_.singles_per_dir);
    } else {
      const int w = within - kOutPinsPerTile - kInPinsPerTile -
                    4 * geom_.singles_per_dir;
      r.kind = NodeKind::kHex;
      r.a = static_cast<std::uint8_t>(w / geom_.hexes_per_dir);
      r.b = static_cast<std::uint8_t>(w % geom_.hexes_per_dir);
    }
    return r;
  }
  if (n < long_col_base_) {
    const std::size_t w = n - long_row_base_;
    r.kind = NodeKind::kLongRow;
    r.tile = ClbCoord{static_cast<int>(w / geom_.longs_per_track), -1};
    r.a = static_cast<std::uint8_t>(w % geom_.longs_per_track);
    return r;
  }
  if (n < pad_base_) {
    const std::size_t w = n - long_col_base_;
    r.kind = NodeKind::kLongCol;
    r.tile = ClbCoord{-1, static_cast<int>(w / geom_.longs_per_track)};
    r.a = static_cast<std::uint8_t>(w % geom_.longs_per_track);
    return r;
  }
  const std::size_t w = n - pad_base_;
  const std::size_t tile_index = w / geom_.pads_per_tile;
  r.kind = NodeKind::kPad;
  r.tile = ClbCoord{static_cast<int>(tile_index) / geom_.clb_cols,
                    static_cast<int>(tile_index) % geom_.clb_cols};
  r.a = static_cast<std::uint8_t>(w % geom_.pads_per_tile);
  return r;
}

bool RoutingSkeleton::wire_target(ClbCoord t, Dir d, int span,
                                  ClbCoord& out) const {
  ClbCoord far = step(t, d, span);
  if (!geom_.in_bounds(far)) return false;
  out = far;
  return true;
}

std::span<const NodeId> RoutingSkeleton::fanout(NodeId n) const {
  RELOGIC_CHECK(n < node_count_);
  const auto begin = fanout_offsets_[n];
  const auto end = fanout_offsets_[n + 1];
  return {fanout_edges_.data() + begin, fanout_edges_.data() + end};
}

bool RoutingSkeleton::has_edge(NodeId from, NodeId to) const {
  RELOGIC_CHECK(from < node_count_);
  const auto* begin = sorted_edges_.data() + fanout_offsets_[from];
  const auto* end = sorted_edges_.data() + fanout_offsets_[from + 1];
  return std::binary_search(begin, end, to);
}

// ---------------------------------------------------------------------------
// RoutingSkeleton — builders
// ---------------------------------------------------------------------------

template <class Emit>
void RoutingSkeleton::enumerate_pips(Emit&& emit) const {
  enumerate_pips_rows(0, geom_.clb_rows, std::forward<Emit>(emit));
}

template <class Emit>
void RoutingSkeleton::enumerate_pips_rows(int row_begin, int row_end,
                                          Emit&& emit) const {
  const DeviceGeometry& g = geom_;
  const int s = g.singles_per_dir;
  const int h = g.hexes_per_dir;
  const int lpt = g.longs_per_track;

  // Emission runs once per edge per builder pass — at XCV1000 that is ten
  // million edges — so ids are formed by pure addition from per-tile bases
  // instead of the checked public constructors (whose bounds checks and
  // per-call tile multiply dominated the seed's build time). The loop
  // structure below guarantees every id is in range; the public API keeps
  // its checks. Emission ORDER is load-bearing: fanout() preserves it and
  // router exploration order (fig5's byte-pinned output) depends on it.
  const std::size_t stride = static_cast<std::size_t>(tile_stride_);
  const auto tile_base = [&](ClbCoord t) {
    return (static_cast<std::size_t>(t.row) * g.clb_cols + t.col) * stride;
  };
  // Offsets of each node family within one tile's id block.
  const std::size_t single0 = kOutPinsPerTile + kInPinsPerTile;
  const std::size_t hex0 = single0 + 4 * static_cast<std::size_t>(s);
  const auto single_at = [&](std::size_t base, int d, int i) {
    return static_cast<NodeId>(base + single0 + d * s + i);
  };
  const auto hex_at = [&](std::size_t base, int d, int i) {
    return static_cast<NodeId>(base + hex0 + d * h + i);
  };

  for (int row = row_begin; row < row_end; ++row) {
    for (int col = 0; col < g.clb_cols; ++col) {
      const ClbCoord t{row, col};
      const std::size_t tb = tile_base(t);

      // OMUX: every cell output drives every single and hex leaving its tile.
      for (int cell = 0; cell < 4; ++cell) {
        for (int q = 0; q < 2; ++q) {
          const NodeId out = static_cast<NodeId>(tb + cell * 2 + q);
          for (int d = 0; d < 4; ++d) {
            for (int i = 0; i < s; ++i) emit(out, single_at(tb, d, i));
            for (int i = 0; i < h; ++i) emit(out, hex_at(tb, d, i));
          }
        }
      }

      // Input pads drive singles leaving the tile.
      if (g.is_boundary(t)) {
        const std::size_t pad0 =
            pad_base_ + (static_cast<std::size_t>(row) * g.clb_cols + col) *
                            g.pads_per_tile;
        for (int p = 0; p < g.pads_per_tile; ++p) {
          const NodeId pd = static_cast<NodeId>(pad0 + p);
          for (int d = 0; d < 4; ++d)
            for (int i = 0; i < s; ++i) emit(pd, single_at(tb, d, i));
        }
      }

      for (int d = 0; d < 4; ++d) {
        const Dir dir = static_cast<Dir>(d);

        // Singles leaving tile t land in the neighbouring tile.
        ClbCoord far;
        if (wire_target(t, dir, 1, far)) {
          const std::size_t fb = tile_base(far);
          const bool far_boundary = g.is_boundary(far);
          const std::size_t far_pad0 =
              pad_base_ + (static_cast<std::size_t>(far.row) * g.clb_cols +
                           far.col) *
                              g.pads_per_tile;
          const std::size_t far_lr =
              long_row_base_ + static_cast<std::size_t>(far.row) * lpt;
          const std::size_t far_lc =
              long_col_base_ + static_cast<std::size_t>(far.col) * lpt;
          for (int i = 0; i < s; ++i) {
            const NodeId w = single_at(tb, d, i);
            // IMUX at the far tile: any input pin.
            for (int cell = 0; cell < 4; ++cell)
              for (int p = 0; p < kInPorts; ++p)
                emit(w, static_cast<NodeId>(fb + kOutPinsPerTile +
                                            cell * kInPorts + p));
            // Output pads at the far tile.
            if (far_boundary)
              for (int p = 0; p < g.pads_per_tile; ++p)
                emit(w, static_cast<NodeId>(far_pad0 + p));
            // Switch matrix: straight, and turns on index i and i^1.
            emit(w, single_at(fb, d, i));
            for (int turn : {1, 3}) {
              const int nd = (d + turn) % 4;
              emit(w, single_at(fb, nd, i));
              if ((i ^ 1) < s) emit(w, single_at(fb, nd, i ^ 1));
            }
            // Entry into hex lines.
            emit(w, hex_at(fb, d, i % h));
            // Taps onto long lines at spaced tiles.
            if ((far.col % kLongTapSpacing) == 0)
              for (int tr = 0; tr < lpt; ++tr)
                emit(w, static_cast<NodeId>(far_lr + tr));
            if ((far.row % kLongTapSpacing) == 0)
              for (int tr = 0; tr < lpt; ++tr)
                emit(w, static_cast<NodeId>(far_lc + tr));
          }

          // Hex lines land hex_span tiles away (clipped hexes do not exist).
          ClbCoord hex_far;
          if (wire_target(t, dir, g.hex_span, hex_far)) {
            const std::size_t hb = tile_base(hex_far);
            const int sj = std::min(s, 4);
            for (int i = 0; i < h; ++i) {
              const NodeId w = hex_at(tb, d, i);
              for (int cell = 0; cell < 4; ++cell)
                for (int p = 0; p < kInPorts; ++p)
                  emit(w, static_cast<NodeId>(hb + kOutPinsPerTile +
                                              cell * kInPorts + p));
              // Chain onward or fan out to singles.
              emit(w, hex_at(hb, d, i));
              for (int dd = 0; dd < 4; ++dd)
                for (int j = 0; j < sj; ++j) emit(w, single_at(hb, dd, j));
            }
          }
        }
      }

      // Long lines drive singles at every tile they cross.
      const std::size_t lr0 =
          long_row_base_ + static_cast<std::size_t>(row) * lpt;
      const std::size_t lc0 =
          long_col_base_ + static_cast<std::size_t>(col) * lpt;
      const int sj = std::min(s, 2);
      for (int tr = 0; tr < lpt; ++tr) {
        for (int d = 0; d < 4; ++d)
          for (int j = 0; j < sj; ++j) {
            emit(static_cast<NodeId>(lr0 + tr), single_at(tb, d, j));
            emit(static_cast<NodeId>(lc0 + tr), single_at(tb, d, j));
          }
      }
    }
  }
}

template <class Emit>
void RoutingSkeleton::enumerate_pips_reference(Emit&& emit) const {
  const DeviceGeometry& g = geom_;
  const int s = g.singles_per_dir;
  const int h = g.hexes_per_dir;

  for (int row = 0; row < g.clb_rows; ++row) {
    for (int col = 0; col < g.clb_cols; ++col) {
      const ClbCoord t{row, col};

      // OMUX: every cell output drives every single and hex leaving its tile.
      for (int cell = 0; cell < 4; ++cell) {
        for (int q = 0; q < 2; ++q) {
          const NodeId out = out_pin(t, cell, q != 0);
          for (int d = 0; d < 4; ++d) {
            for (int i = 0; i < s; ++i)
              emit(out, single(t, static_cast<Dir>(d), i));
            for (int i = 0; i < h; ++i)
              emit(out, hex(t, static_cast<Dir>(d), i));
          }
        }
      }

      // Input pads drive singles leaving the tile.
      if (g.is_boundary(t)) {
        for (int p = 0; p < g.pads_per_tile; ++p) {
          const NodeId pd = pad(t, p);
          for (int d = 0; d < 4; ++d)
            for (int i = 0; i < s; ++i)
              emit(pd, single(t, static_cast<Dir>(d), i));
        }
      }

      for (int d = 0; d < 4; ++d) {
        const Dir dir = static_cast<Dir>(d);

        // Singles leaving tile t land in the neighbouring tile.
        ClbCoord far;
        if (wire_target(t, dir, 1, far)) {
          for (int i = 0; i < s; ++i) {
            const NodeId w = single(t, dir, i);
            // IMUX at the far tile: any input pin.
            for (int cell = 0; cell < 4; ++cell)
              for (int p = 0; p < kInPorts; ++p)
                emit(w, in_pin(far, cell, static_cast<CellPort>(p)));
            // Output pads at the far tile.
            if (g.is_boundary(far))
              for (int p = 0; p < g.pads_per_tile; ++p)
                emit(w, pad(far, p));
            // Switch matrix: straight, and turns on index i and i^1.
            emit(w, single(far, dir, i));
            for (int turn : {1, 3}) {
              const Dir nd = static_cast<Dir>((d + turn) % 4);
              emit(w, single(far, nd, i));
              if ((i ^ 1) < s) emit(w, single(far, nd, i ^ 1));
            }
            // Entry into hex lines.
            emit(w, hex(far, dir, i % h));
            // Taps onto long lines at spaced tiles.
            if ((far.col % kLongTapSpacing) == 0)
              for (int tr = 0; tr < g.longs_per_track; ++tr)
                emit(w, long_row(far.row, tr));
            if ((far.row % kLongTapSpacing) == 0)
              for (int tr = 0; tr < g.longs_per_track; ++tr)
                emit(w, long_col(far.col, tr));
          }

          // Hex lines land hex_span tiles away (clipped hexes do not exist).
          ClbCoord hex_far;
          if (wire_target(t, dir, g.hex_span, hex_far)) {
            for (int i = 0; i < h; ++i) {
              const NodeId w = hex(t, dir, i);
              for (int cell = 0; cell < 4; ++cell)
                for (int p = 0; p < kInPorts; ++p)
                  emit(w, in_pin(hex_far, cell, static_cast<CellPort>(p)));
              // Chain onward or fan out to singles.
              emit(w, hex(hex_far, dir, i));
              for (int dd = 0; dd < 4; ++dd)
                for (int j = 0; j < std::min(s, 4); ++j)
                  emit(w, single(hex_far, static_cast<Dir>(dd), j));
            }
          }
        }
      }

      // Long lines drive singles at every tile they cross.
      for (int tr = 0; tr < g.longs_per_track; ++tr) {
        for (int d = 0; d < 4; ++d)
          for (int j = 0; j < std::min(s, 2); ++j) {
            emit(long_row(row, tr), single(t, static_cast<Dir>(d), j));
            emit(long_col(col, tr), single(t, static_cast<Dir>(d), j));
          }
      }
    }
  }
}

namespace {

/// Fork-join width for the skeleton build passes. Fill and mirror operate
/// on disjoint ranges, so ANY width produces byte-identical arrays — the
/// count only trades wall-clock. Small devices stay serial: spawning
/// threads costs more than the work saves, and skeletons for test-sized
/// fabrics are built constantly.
int build_threads(std::size_t edge_count, int rows) {
  if (edge_count < (1u << 21) || rows < 16) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(hw ? hw : 1u, 8u));
}

}  // namespace

void RoutingSkeleton::build_sorted_mirror() {
  const std::size_t total = fanout_edges_.size();
  sorted_edges_.resize(total);
  auto sort_range = [this](std::size_t n0, std::size_t n1) {
    std::copy(fanout_edges_.begin() + fanout_offsets_[n0],
              fanout_edges_.begin() + fanout_offsets_[n1],
              sorted_edges_.begin() + fanout_offsets_[n0]);
    for (std::size_t n = n0; n < n1; ++n) {
      const auto begin = sorted_edges_.begin() + fanout_offsets_[n];
      const auto end = sorted_edges_.begin() + fanout_offsets_[n + 1];
      // Many rows are emitted already ascending (OMUX fanouts, long-line
      // taps, pad fanouts); the linear pre-check beats sorting them again.
      if (!std::is_sorted(begin, end)) std::sort(begin, end);
    }
  };
  const int threads = build_threads(total, geom_.clb_rows);
  if (threads == 1) {
    sort_range(0, node_count_);
    return;
  }
  // Split node ranges by edge mass so every thread sorts a similar volume.
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::size_t prev = 0;
  for (int k = 1; k <= threads; ++k) {
    std::size_t nk = node_count_;
    if (k < threads) {
      const auto target =
          static_cast<std::uint32_t>(total * static_cast<std::size_t>(k) /
                                     threads);
      nk = static_cast<std::size_t>(
          std::lower_bound(fanout_offsets_.begin(), fanout_offsets_.end(),
                           target) -
          fanout_offsets_.begin());
      nk = std::min(nk, node_count_);
      nk = std::max(nk, prev);
    }
    pool.emplace_back(sort_range, prev, nk);
    prev = nk;
  }
  for (auto& t : pool) t.join();
}

std::shared_ptr<const RoutingSkeleton> RoutingSkeleton::build(
    const DeviceGeometry& geom) {
  std::shared_ptr<RoutingSkeleton> s(new RoutingSkeleton(geom));

  // Pass 1: per-node out-degree.
  std::vector<std::uint32_t> degree(s->node_count_, 0);
  s->enumerate_pips([&degree](NodeId from, NodeId) { ++degree[from]; });

  // Prefix sum sizes the CSR arrays exactly.
  s->fanout_offsets_.assign(s->node_count_ + 1, 0);
  std::uint64_t total = 0;
  for (std::size_t n = 0; n < s->node_count_; ++n) {
    s->fanout_offsets_[n] = static_cast<std::uint32_t>(total);
    total += degree[n];
  }
  RELOGIC_CHECK_MSG(total <= 0xFFFFFFFFull,
                    "routing graph exceeds 32-bit edge offsets");
  s->fanout_offsets_[s->node_count_] = static_cast<std::uint32_t>(total);

  // Pass 2: fill in place through per-row cursors. Tile rows partition the
  // emission: every from-node is owned by one tile row — its whole CSR row
  // is written by one band — except long-column lines, which every row
  // crosses in tile order; since each tile contributes exactly
  // 4*min(singles_per_dir, 2) edges per track to each long line, a band
  // starting at tile row r0 starts writing long-column rows at a fixed,
  // precomputable offset. Disjoint writes, byte-identical result at any
  // thread count.
  s->fanout_edges_.resize(total);
  auto* edges = s->fanout_edges_.data();
  const int threads =
      build_threads(static_cast<std::size_t>(total), geom.clb_rows);
  if (threads == 1) {
    std::copy(s->fanout_offsets_.begin(), s->fanout_offsets_.end() - 1,
              degree.begin());
    s->enumerate_pips([&degree, edges](NodeId from, NodeId to) {
      edges[degree[from]++] = to;
    });
  } else {
    const std::uint32_t lc_per_tile =
        4u * static_cast<std::uint32_t>(std::min(geom.singles_per_dir, 2));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int k = 0; k < threads; ++k) {
      const int r0 = geom.clb_rows * k / threads;
      const int r1 = geom.clb_rows * (k + 1) / threads;
      pool.emplace_back([&s, edges, r0, r1, lc_per_tile] {
        std::vector<std::uint32_t> cur(s->fanout_offsets_.begin(),
                                       s->fanout_offsets_.end() - 1);
        const std::uint32_t lc_skip =
            static_cast<std::uint32_t>(r0) * lc_per_tile;
        for (std::size_t n = s->long_col_base_; n < s->pad_base_; ++n)
          cur[n] += lc_skip;
        s->enumerate_pips_rows(r0, r1, [&cur, edges](NodeId from, NodeId to) {
          edges[cur[from]++] = to;
        });
      });
    }
    for (auto& t : pool) t.join();
  }

  s->build_sorted_mirror();
  return s;
}

std::shared_ptr<const RoutingSkeleton> RoutingSkeleton::build_reference(
    const DeviceGeometry& geom) {
  std::shared_ptr<RoutingSkeleton> s(new RoutingSkeleton(geom));

  std::vector<std::vector<NodeId>> staging(s->node_count_);
  s->enumerate_pips_reference(
      [&staging](NodeId from, NodeId to) { staging[from].push_back(to); });

  s->fanout_offsets_.assign(s->node_count_ + 1, 0);
  std::size_t total = 0;
  for (std::size_t n = 0; n < s->node_count_; ++n) {
    s->fanout_offsets_[n] = static_cast<std::uint32_t>(total);
    total += staging[n].size();
  }
  s->fanout_offsets_[s->node_count_] = static_cast<std::uint32_t>(total);
  s->fanout_edges_.reserve(total);
  for (std::size_t n = 0; n < s->node_count_; ++n) {
    s->fanout_edges_.insert(s->fanout_edges_.end(), staging[n].begin(),
                            staging[n].end());
  }
  s->build_sorted_mirror();
  return s;
}

// ---------------------------------------------------------------------------
// Skeleton cache
// ---------------------------------------------------------------------------

namespace {

/// Cache key covering every geometry field: two geometries share a skeleton
/// only if nothing about them differs (including the name and fields the
/// routing pool does not read today — cheap insurance against a future
/// field silently aliasing two distinct pools).
std::string geometry_key(const DeviceGeometry& g) {
  std::string key = g.name;
  for (int v : {g.clb_rows, g.clb_cols, g.cells_per_clb, g.singles_per_dir,
                g.hexes_per_dir, g.longs_per_track, g.hex_span,
                g.pads_per_tile, g.frames_per_clb_column,
                g.frames_per_iob_column, g.frames_center_column,
                g.frames_per_cell_config}) {
    key += '|';
    key += std::to_string(v);
  }
  return key;
}

struct CacheEntry {
  std::shared_ptr<const RoutingSkeleton> skeleton;
  /// RELOGIC_AUDIT builds cross-check the entry against a fresh build on
  /// its first cache hit; later hits skip the (expensive) recheck.
  bool audited = false;
};

Mutex& cache_mutex() {
  static Mutex mu;
  return mu;
}

std::unordered_map<std::string, CacheEntry>& cache()
    RELOGIC_REQUIRES(cache_mutex()) {
  // Leaked intentionally: Fabrics owned by static-duration objects may
  // release their skeleton handles after normal static destruction.
  static auto* map = new std::unordered_map<std::string, CacheEntry>();
  return *map;
}

void audit_entry(const CacheEntry& entry) {
  const auto fresh = RoutingSkeleton::build_reference(entry.skeleton->geometry());
  RELOGIC_AUDIT_CHECK(entry.skeleton->same_adjacency(*fresh),
                      "routing-skeleton cache",
                      "cached skeleton for geometry '" +
                          entry.skeleton->geometry().name +
                          "' diverges from a fresh single-use build");
}

}  // namespace

std::shared_ptr<const RoutingSkeleton> acquire_routing_skeleton(
    const DeviceGeometry& geom) {
  MutexLock lock(cache_mutex());
  auto& entry = cache()[geometry_key(geom)];
  if (!entry.skeleton) {
    entry.skeleton = RoutingSkeleton::build(geom);
    return entry.skeleton;
  }
  if constexpr (audit_enabled()) {
    if (!entry.audited) {
      audit_entry(entry);
      entry.audited = true;
    }
  }
  return entry.skeleton;
}

std::size_t routing_skeleton_cache_size() {
  MutexLock lock(cache_mutex());
  return cache().size();
}

void clear_routing_skeleton_cache() {
  MutexLock lock(cache_mutex());
  cache().clear();
}

void audit_routing_skeleton_cache() {
  MutexLock lock(cache_mutex());
  for (auto& [key, entry] : cache()) {
    audit_entry(entry);
    entry.audited = true;
  }
}

// ---------------------------------------------------------------------------
// RoutingGraph — per-device occupancy overlay
// ---------------------------------------------------------------------------

RoutingGraph::RoutingGraph(const DeviceGeometry& geom)
    : RoutingGraph(acquire_routing_skeleton(geom)) {}

RoutingGraph::RoutingGraph(std::shared_ptr<const RoutingSkeleton> skeleton)
    : skel_(std::move(skeleton)) {
  RELOGIC_CHECK(skel_ != nullptr);
  occupancy_.assign(skel_->node_count(), kNoNet);
}

void RoutingGraph::occupy(NodeId n, NetId net) {
  RELOGIC_CHECK(n < node_count() && net != kNoNet);
  RELOGIC_CHECK_MSG(occupancy_[n] == kNoNet || occupancy_[n] == net,
                    "routing node " + info(n).to_string() +
                        " already occupied by another net");
  if (occupancy_[n] == kNoNet) ++occupied_count_;
  occupancy_[n] = net;
}

void RoutingGraph::release(NodeId n) {
  RELOGIC_CHECK(n < node_count());
  if (occupancy_[n] != kNoNet) --occupied_count_;
  occupancy_[n] = kNoNet;
}

}  // namespace relogic::fabric
