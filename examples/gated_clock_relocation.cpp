// gated_clock_relocation — a narrated walk through the hardest relocation
// case (paper Figs. 3 and 4): a flip-flop whose capture is controlled by a
// clock-enable.
//
// The two-phase procedure alone cannot transfer such a cell's state — CE
// may stay inactive forever, and forcing it would corrupt the state if it
// became active mid-copy. The auxiliary relocation circuit (2:1 mux + OR
// gate placed in a nearby free CLB) solves it; this example relocates a
// gated shift register while CE is held LOW, proving the state crosses via
// the auxiliary path and not via normal operation.
#include <cstdio>

#include "relogic/common/logging.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;

int main() {
  set_log_level(LogLevel::kInfo);  // narrate every engine transaction

  fabric::Fabric fab(fabric::DeviceGeometry::tiny(12, 12));
  const fabric::DelayModel dm;
  config::BoundaryScanPort jtag;
  config::ConfigController controller(fab, jtag);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  // A gated-clock shift register: every FF has a CE pin.
  const auto nl = netlist::bench::shift_register(
      4, netlist::bench::ClockingStyle::kGatedClock);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, ClbCoord{2, 2}, fab.geometry());
  auto impl = implementer.implement(mapped, opts);

  sim::CircuitHarness harness(sim, nl, impl);

  // Shift the pattern 1,0,1,1 in with CE high.
  for (const bool bit : {true, false, true, true}) {
    if (!harness.step({bit, /*ce=*/true}).ok()) return 1;
  }
  std::printf("\npattern loaded; now CE goes LOW — the register must hold "
              "1011 indefinitely.\n");
  for (int i = 0; i < 5; ++i) {
    if (!harness.step({false, /*ce=*/false}).ok()) return 1;
  }

  // Print the held state.
  auto print_state = [&] {
    std::printf("register state:");
    for (netlist::SigId s : nl.state_elements()) {
      const auto& site = impl.site_of_state(s);
      std::printf(" %s=%d", nl.node(s).name.c_str(),
                  sim.state_of(site.clb, site.cell) ? 1 : 0);
    }
    std::printf("\n");
  };
  print_state();

  std::printf("\nrelocating every cell with CE inactive — the state can only "
              "cross through the auxiliary relocation circuit:\n\n");
  const auto report = engine.relocate_function(impl, ClbRect{7, 7, 4, 4});
  for (const auto& r : report.cells) {
    std::printf("  %s\n", r.to_string().c_str());
    if (r.reg == fabric::RegMode::kFF && !r.state_verified) {
      std::printf("  STATE NOT VERIFIED\n");
      return 1;
    }
  }
  std::printf("\ntotal: %d frames, %s of configuration-port time\n",
              report.frames_written, report.config_time.to_string().c_str());

  print_state();

  // Still holding with CE low; then shift two more bits with CE high.
  for (int i = 0; i < 3; ++i) {
    if (!harness.step({false, /*ce=*/false}).ok()) return 1;
  }
  for (const bool bit : {true, false}) {
    if (!harness.step({bit, /*ce=*/true}).ok()) return 1;
  }
  std::printf("\npost-relocation operation verified (hold + shift); "
              "monitor %s\n",
              sim.monitor().clean() ? "clean" : "DIRTY");
  return sim.monitor().clean() ? 0 : 1;
}
