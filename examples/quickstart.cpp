// quickstart — the smallest end-to-end tour of the relogic API:
//   1. describe a circuit (a 4-bit counter) as a netlist,
//   2. place & route it on a Virtex-style fabric model,
//   3. run it in the event-driven simulator, in lockstep with the golden
//      functional model,
//   4. dynamically relocate one of its logic cells to the other side of
//      the device *while it keeps counting*, and
//   5. show that nothing was disturbed — the paper's headline result.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;

int main() {
  // --- the platform: an XCV50-class device, Boundary-Scan configured ------
  fabric::Fabric fab(fabric::DeviceGeometry::preset(
      fabric::DevicePreset::kXCV50));
  const fabric::DelayModel dm;
  config::BoundaryScanPort jtag;  // 20 MHz TCK, the paper's set-up
  config::ConfigController controller(fab, jtag, /*column_granular=*/true);

  // --- the live application: a 4-bit counter ------------------------------
  const netlist::Netlist nl =
      netlist::bench::counter(4, netlist::bench::ClockingStyle::kFreeRunning);
  std::printf("circuit '%s': %d gates, %d FFs\n", nl.name().c_str(),
              nl.gate_count(), nl.ff_count());

  place::Implementer implementer(fab, dm);
  const auto mapped = netlist::map_netlist(nl);
  place::ImplementOptions opts;
  opts.region = place::suggest_region(mapped, ClbCoord{2, 2}, fab.geometry());
  place::Implementation impl = implementer.implement(mapped, opts);
  std::printf("implemented in region %s (%d cells)\n",
              impl.region.to_string().c_str(), impl.cell_count());

  // --- simulate, lockstep against the golden model ------------------------
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});  // 10 MHz user clock
  sim::CircuitHarness harness(sim, nl, impl);
  harness.watch_registered_outputs();

  for (int cycle = 0; cycle < 10; ++cycle) {
    const auto r = harness.step({});  // counter has no inputs
    if (!r.ok()) {
      std::printf("lockstep mismatch!\n");
      return 1;
    }
  }
  std::printf("10 cycles in lockstep, count = %d%d%d%d\n",
              harness.golden().output("q3"), harness.golden().output("q2"),
              harness.golden().output("q1"), harness.golden().output("q0"));

  // --- relocate cell 0 while the counter runs -----------------------------
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);
  const auto report =
      engine.relocate_cell(impl, 0, place::CellSite{ClbCoord{12, 18}, 0});
  std::printf("relocation: %s\n", report.to_string().c_str());

  // --- prove nothing was disturbed ----------------------------------------
  for (int cycle = 0; cycle < 20; ++cycle) {
    const auto r = harness.step({});
    if (!r.ok()) {
      std::printf("lockstep mismatch after relocation!\n");
      return 1;
    }
  }
  std::printf("20 more cycles in lockstep after the move\n");
  std::printf("monitor: %s\n",
              sim.monitor().clean() ? "no glitches, no drive conflicts"
                                    : "VIOLATIONS RECORDED");
  return sim.monitor().clean() ? 0 : 1;
}
