// itc99_live_migration — the paper's validation campaign, end to end.
//
// Implements the ITC'99-class circuit suite on an XCV200 model, runs each
// under random stimuli, migrates it across the device while it operates
// (gated-clock style, the hardest case), and reports per-circuit: cells
// moved, frames written, configuration time per cell — alongside the
// machine-checked "no state loss / no glitches" verdict.
#include <cstdio>

#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;
using netlist::bench::ClockingStyle;

int main() {
  const auto suite = netlist::bench::itc99_suite(ClockingStyle::kGatedClock);

  std::printf("%-6s %6s %6s %7s %8s %12s %14s  %s\n", "ckt", "FFs", "cells",
              "moved", "frames", "config/ms", "per-cell/ms", "verdict");

  double total_ms = 0;
  int total_cells = 0;
  bool all_clean = true;

  for (const auto& entry : suite) {
    fabric::Fabric fab(fabric::DeviceGeometry::xcv200());
    const fabric::DelayModel dm;
    config::BoundaryScanPort jtag;  // 20 MHz TCK, as in the paper
    config::ConfigController controller(fab, jtag);
    sim::FabricSim sim(fab, dm);
    sim.add_clock(sim::ClockSpec{});
    place::Implementer implementer(fab, dm);
    place::Router router(fab, dm);
    reloc::RelocationEngine engine(controller, router, &sim);

    const auto mapped = netlist::map_netlist(entry.circuit);
    place::ImplementOptions opts;
    opts.region =
        place::suggest_region(mapped, ClbCoord{2, 2}, fab.geometry());
    auto impl = implementer.implement(mapped, opts);

    sim::CircuitHarness harness(sim, entry.circuit, impl);
    harness.watch_registered_outputs();
    Rng rng(0xCAFE + impl.cell_count());
    bool ok = true;
    for (int i = 0; i < 10 && ok; ++i) ok = harness.step_random(rng).ok();

    // Migrate the whole circuit to the opposite corner of the device.
    const ClbRect dest{impl.region.row + 12, impl.region.col + 20,
                       impl.region.height, impl.region.width};
    const auto report = engine.relocate_function(impl, dest);

    for (int i = 0; i < 20 && ok; ++i) ok = harness.step_random(rng).ok();
    ok = ok && sim.monitor().clean();
    all_clean = all_clean && ok;

    const double config_ms = report.config_time.milliseconds();
    std::printf("%-6s %6d %6d %7zu %8d %12.2f %14.2f  %s\n",
                entry.name.c_str(), entry.circuit.ff_count(),
                impl.cell_count(), report.cells.size(),
                report.frames_written, config_ms,
                config_ms / static_cast<double>(report.cells.size()),
                ok ? "no disturbance" : "FAILED");
    total_ms += config_ms;
    total_cells += static_cast<int>(report.cells.size());
  }

  std::printf("\naverage relocation time per gated-clock cell: %.1f ms "
              "(paper: ~22.6 ms per CLB, Boundary Scan @ 20 MHz)\n",
              total_ms / total_cells);
  return all_clean ? 0 : 1;
}
