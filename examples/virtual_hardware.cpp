// virtual_hardware — the concept the paper closes on (and credits to
// WASMII [1]): a set of applications that in total need far more than
// 100 % of the FPGA executes on one device by swapping functions in and
// out, with on-line rearrangement keeping the free space usable.
//
// Builds a workload whose aggregate area demand is ~3x the device and runs
// it under the three management policies, printing how much "virtual
// hardware" each policy actually delivers.
#include <cstdio>

#include "relogic/config/port.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/sched/scheduler.hpp"

using namespace relogic;
using namespace relogic::sched;

int main() {
  const int rows = 20, cols = 20;  // 400 CLBs of real hardware
  config::SelectMapPort port;
  const reloc::RelocationCostModel cost(
      fabric::DeviceGeometry::xcv200(), port);

  // 40 functions of 25-144 CLBs each: several device-fulls of aggregate
  // demand on a 400-CLB device, phased so multiple functions contend.
  RandomTaskParams p;
  p.task_count = 40;
  p.min_side = 5;
  p.max_side = 12;
  p.mean_interarrival_ms = 220.0;
  p.mean_duration_ms = 2600.0;
  p.seed = 7;
  const auto tasks = random_tasks(p);

  int total_clbs = 0;
  for (const auto& t : tasks) total_clbs += t.fn.clbs();
  std::printf("device: %d CLBs; workload: %d functions totalling %d CLBs "
              "(%.1fx the device)\n\n",
              rows * cols, static_cast<int>(tasks.size()), total_clbs,
              static_cast<double>(total_clbs) / (rows * cols));

  std::printf("%-24s %9s %10s %12s %14s\n", "policy", "admitted",
              "makespan/s", "avg wait/ms", "app downtime/ms");
  for (const ManagementPolicy policy :
       {ManagementPolicy::kNoRearrange, ManagementPolicy::kHaltAndMove,
        ManagementPolicy::kTransparent}) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.max_wait = SimTime::ms(6000);
    Scheduler sched(rows, cols, cost, cfg);
    const auto stats = sched.run_tasks(tasks);
    std::printf("%-24s %6d/%2d %10.2f %12.2f %14.2f\n",
                to_string(policy).c_str(),
                static_cast<int>(tasks.size()) - stats.rejected,
                static_cast<int>(tasks.size()),
                stats.makespan.seconds(), stats.avg_allocation_delay_ms(),
                stats.total_halted.milliseconds());
  }
  std::printf("\nthe transparent policy delivers the virtual-hardware "
              "illusion: every byte of\nrearrangement cost lands on the "
              "configuration port, none on the applications.\n");
  return 0;
}
