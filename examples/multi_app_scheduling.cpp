// multi_app_scheduling — the Fig. 1 scenario: three applications share one
// device in the spatial and temporal domains, with functions configured in
// advance (the rt interval) so swapping costs the applications nothing.
//
// Prints the resulting schedule as a timeline and compares the three
// management policies on the same workload.
#include <cstdio>

#include "relogic/config/port.hpp"
#include "relogic/reloc/cost.hpp"
#include "relogic/sched/scheduler.hpp"

using namespace relogic;
using namespace relogic::sched;

int main() {
  const auto geom = fabric::DeviceGeometry::xcv200();
  config::BoundaryScanPort jtag;
  const reloc::RelocationCostModel cost(geom, jtag);

  const auto apps = fig1_applications(/*scale_clbs=*/8);

  std::printf("=== Fig. 1 scenario on %s (%dx%d CLBs) ===\n",
              geom.name.c_str(), geom.clb_rows, geom.clb_cols);

  for (const ManagementPolicy policy :
       {ManagementPolicy::kNoRearrange, ManagementPolicy::kHaltAndMove,
        ManagementPolicy::kTransparent}) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    Scheduler sched(geom.clb_rows, geom.clb_cols, cost, cfg);
    const RunStats stats = sched.run_apps(apps, /*overlap=*/1);

    std::printf("\npolicy: %s\n", to_string(policy).c_str());
    std::printf("  %-4s %7s %10s %10s %10s %9s\n", "fn", "clbs", "ready/ms",
                "start/ms", "end/ms", "delay/ms");
    for (const auto& t : stats.tasks) {
      std::printf("  %-4s %7d %10.2f %10.2f %10.2f %9.2f\n", t.name.c_str(),
                  t.clbs, t.ready.milliseconds(),
                  t.run_start.milliseconds(), t.finish.milliseconds(),
                  t.allocation_delay().milliseconds());
    }
    std::printf("  makespan %.2f ms, utilisation %.1f%%, port busy %.2f ms, "
                "halted %.2f ms\n",
                stats.makespan.milliseconds(), stats.utilization_avg * 100,
                stats.config_port_busy.milliseconds(),
                stats.total_halted.milliseconds());
  }

  // The parallelism effect the paper notes: raising the degree of
  // parallelism retards incoming reconfigurations for lack of space.
  std::printf("\n=== allocation delay vs degree of parallelism ===\n");
  std::printf("%-12s %18s %18s\n", "parallelism", "avg delay (ms)",
              "max delay (ms)");
  for (int overlap = 1; overlap <= 4; ++overlap) {
    SchedulerConfig cfg;
    cfg.policy = ManagementPolicy::kTransparent;
    Scheduler sched(geom.clb_rows, geom.clb_cols, cost, cfg);
    const RunStats stats = sched.run_apps(apps, overlap);
    std::printf("%-12d %18.2f %18.2f\n", overlap,
                stats.avg_allocation_delay_ms(),
                stats.max_allocation_delay_ms());
  }
  return 0;
}
