// defrag_demo — on-line defragmentation with live circuits (paper Secs. 1
// and 5).
//
// Loads four circuits, removes two to shatter the free space, then shows
// that an incoming request which does NOT fit is satisfied after a planned
// rearrangement executed with transparent relocation — while the surviving
// circuits keep running in lockstep with their golden models.
#include <cstdio>
#include <memory>

#include "relogic/area/defrag.hpp"
#include "relogic/area/manager.hpp"
#include "relogic/config/controller.hpp"
#include "relogic/config/port.hpp"
#include "relogic/netlist/benchmarks.hpp"
#include "relogic/place/implement.hpp"
#include "relogic/reloc/engine.hpp"
#include "relogic/sim/harness.hpp"

using namespace relogic;
using netlist::bench::ClockingStyle;

namespace {
void show(const area::AreaManager& mgr, const char* when) {
  std::printf("%-28s free %3d CLBs, largest free %-14s frag %.3f\n", when,
              mgr.free_clbs(), mgr.largest_free_rect().to_string().c_str(),
              mgr.fragmentation());
}
}  // namespace

int main() {
  fabric::Fabric fab(fabric::DeviceGeometry::tiny(16, 16));
  const fabric::DelayModel dm;
  config::BoundaryScanPort jtag;
  config::ConfigController controller(fab, jtag);
  sim::FabricSim sim(fab, dm);
  sim.add_clock(sim::ClockSpec{});
  place::Implementer implementer(fab, dm);
  place::Router router(fab, dm);
  reloc::RelocationEngine engine(controller, router, &sim);

  area::AreaManager mgr(16, 16);

  // Load four circuits side by side across the middle of the device.
  struct Loaded {
    netlist::Netlist nl;
    place::Implementation impl;
    area::RegionId region;
  };
  std::vector<std::unique_ptr<Loaded>> circuits;
  std::vector<std::unique_ptr<sim::CircuitHarness>> harnesses;

  // Full-width horizontal bands: retiring two of them shatters the free
  // space into strips too low for a square request.
  const std::pair<const char*, ClbRect> layout[] = {{"c0", {0, 0, 3, 16}},
                                                    {"c1", {3, 0, 4, 16}},
                                                    {"c2", {7, 0, 3, 16}},
                                                    {"c3", {10, 0, 6, 16}}};
  int idx = 0;
  for (const auto& [name, band] : layout) {
    auto nl = netlist::bench::random_fsm(name, 10, 3, 2, 100 + idx,
                                         ClockingStyle::kFreeRunning);
    const auto mapped = netlist::map_netlist(nl);
    place::ImplementOptions opts;
    opts.region = band;
    auto impl = implementer.implement(mapped, opts);
    const auto region = mgr.allocate_at(name, impl.region);
    circuits.push_back(std::make_unique<Loaded>(
        Loaded{std::move(nl), std::move(impl), region}));
    ++idx;
  }
  for (auto& c : circuits) {
    harnesses.push_back(
        std::make_unique<sim::CircuitHarness>(sim, c->nl, c->impl));
  }
  show(mgr, "after loading 4 circuits:");

  // Warm everything up.
  Rng rng(7);
  for (auto& h : harnesses)
    for (int i = 0; i < 8; ++i)
      if (!h->step_random(rng).ok()) return 1;

  // Retire circuits 1 and 3: free space shatters into small pools.
  for (int retire : {1, 3}) {
    implementer.remove(circuits[static_cast<std::size_t>(retire)]->impl);
    mgr.release(circuits[static_cast<std::size_t>(retire)]->region);
    harnesses[static_cast<std::size_t>(retire)].reset();
  }
  show(mgr, "after retiring 2 circuits:");

  // An incoming function needs a 9x9 block — more than any single hole.
  const int need_h = 9, need_w = 9;
  if (mgr.can_fit(need_h, need_w)) {
    std::printf("request unexpectedly fits — enlarge the scenario\n");
    return 1;
  }
  std::printf("incoming %dx%d request does NOT fit; free area would "
              "suffice (%d >= %d)\n",
              need_h, need_w, mgr.free_clbs(), need_h * need_w);

  const auto plan = area::plan_for_request(mgr, need_h, need_w);
  if (!plan) {
    std::printf("no rearrangement plan found\n");
    return 1;
  }
  std::printf("rearrangement plan: %zu move(s), %d CLBs\n",
              plan->moves.size(), plan->moved_clbs());

  // Execute the plan with transparent relocation: the survivors never stop.
  for (const auto& mv : plan->moves) {
    for (auto& c : circuits) {
      if (c->region == mv.region) {
        const auto report = engine.relocate_function(c->impl, mv.to);
        mgr.move(mv.region, mv.to);
        std::printf("  moved %-3s %s -> %s  (%d frames, %s on the port)\n",
                    c->impl.name.c_str(), mv.from.to_string().c_str(),
                    mv.to.to_string().c_str(), report.frames_written,
                    report.config_time.to_string().c_str());
      }
    }
  }
  show(mgr, "after defragmentation:");
  std::printf("request slot: %s\n", plan->request_slot.to_string().c_str());

  // The moved circuits are still in lockstep: no state was lost.
  for (auto& h : harnesses) {
    if (!h) continue;
    for (int i = 0; i < 10; ++i) {
      if (!h->step_random(rng).ok()) {
        std::printf("LOCKSTEP FAILURE\n");
        return 1;
      }
    }
  }
  std::printf("all running circuits unaffected; monitor %s\n",
              sim.monitor().clean() ? "clean" : "DIRTY");
  return sim.monitor().clean() ? 0 : 1;
}
