// Lint self-test fixture: near-misses only — every pattern here skirts a
// rule without breaking it, and the self-test requires zero reports.
#include <map>
#include <string>

// A comment mentioning std::chrono::steady_clock must not trip wall-clock,
/* nor a block comment calling rand() or time(nullptr). */

struct SimClock {
  long now_ms = 0;
  long sim_time() const { return now_ms; }
};

long near_misses(SimClock& clk, int operand) {
  long t = clk.sim_time();       // identifier merely *containing* "time("
  long u = est_start_time(t);    // identifier merely ending in "time"
  set_timeout(5);                // "time" not followed by '('
  return t + u + operand;
}

struct Report {
  std::map<std::string, int> rows_;  // ordered: free to iterate anywhere
  std::string to_json() const {
    std::string out;
    for (const auto& [k, v] : rows_) {
      out += k + "=" + std::to_string(v) + " %plus ";  // %p + word char
    }
    return out;
  }
};
