// Lint self-test fixture: real violations, every one carrying the escape
// hatch — the self-test requires this file to stay quiet.
#include <chrono>

long wall_report() {
  // lint-allow(wall-clock): operator-facing wall time, never serialised
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long wall_inline() {
  return time(nullptr);  // lint-allow(wall-clock): fixture for same-line form
}
