// Lint self-test fixture: the file name marks an export path, so ANY
// unordered iteration in here is flagged regardless of function name.
#include <string>
#include <unordered_set>

std::unordered_set<int> pins_;

int sum_pins() {
  int total = 0;
  for (int p : pins_) {
    total += p;
  }
  return total;
}
