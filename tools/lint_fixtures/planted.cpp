// Lint self-test fixture: every violation here is PLANTED and the line
// numbers are pinned by EXPECTED in check_determinism_lint.py. Renumber
// both together. This file is never compiled.
#include <chrono>
#include <random>
#include <unordered_map>

long wall_a() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
long wall_b(struct timespec* ts) {
  return clock_gettime(0, ts);
}
long wall_c() {
  return time(nullptr);
}

int rand_a() {
  std::random_device rd;
  (void)rd;
  return rand();
}
int rand_b(std::mt19937& gen) {
  return static_cast<int>(gen());
}

void ptr_a(const void* p) {
  printf("at %p\n", p);
}
void ptr_b(std::ostream& os, int* p) {
  os << static_cast<void*>(p);
}

struct Registry {
  std::unordered_map<int, int> entries_;
  std::string to_json() const {
    std::string out;
    // Unordered iteration inside an export function: flagged.
    for (const auto& [k, v] : entries_) {
      out += std::to_string(k);
    }
    return out;
  }
};
