#!/usr/bin/env python3
"""Determinism lint for the relogic source tree (stdlib only).

The library promises byte-identical exports for identical inputs — same
seed, any thread count (DESIGN.md §7). That contract dies in small ways:
a wall-clock read feeding a report, a stray rand(), an unordered_map
iterated into JSON, a pointer value formatted into a trace. The compiler
accepts all of them, so this lint gates the patterns instead:

  wall-clock          std::chrono::{system,steady,high_resolution}_clock,
                      gettimeofday / clock_gettime / time(NULL) /
                      localtime / gmtime. Simulated time (common/time.hpp)
                      is the only clock model code may read. Built-in
                      allowance: src/obs/trace.cpp, whose steady_ns()
                      feeds ONLY the wall-arg side channel that the
                      deterministic exporter never serialises.

  rand                std::random_device, rand()/srand(), std::mt19937,
                      *_distribution. All randomness flows through the
                      seeded common/rng.hpp engine. Built-in allowance:
                      the rng implementation itself.

  unordered-iteration range-for over a container declared unordered_*
                      anywhere in the tree, inside an export path — a
                      file under obs/ or matching telemetry/json/export,
                      or a function whose name says it renders output
                      (to_json, to_string, export*, dump*, write_json,
                      render*). Iteration order is libc++-lottery there;
                      sort first or use std::map.

  pointer-format      "%p" in a format string, or streaming (void*)/
                      static_cast<void*> — addresses differ across runs
                      by ASLR, so they can never appear in output.

An intentional exception carries the escape hatch on the same line or the
line directly above, and must say why:

    // lint-allow(wall-clock): operator wall-time report, not simulation

Usage:
  check_determinism_lint.py [ROOT ...]   scan trees (default: src/)
  check_determinism_lint.py --self-test  run against tools/lint_fixtures/

Exit status: 0 clean, 1 violations (or self-test mismatch), 2 usage.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")

# Paths (relative, forward slashes) allowed to violate one rule, with the
# reason recorded here rather than sprinkled inline.
BUILTIN_ALLOW = {
    "wall-clock": {
        # steady_ns() feeds the wall-arg side channel only; the exporter
        # orders and timestamps events from simulated time (DESIGN.md §7).
        "src/obs/trace.cpp",
    },
    "rand": {
        # The seeded engine everything else must use.
        "src/common/rng.cpp",
        "src/common/include/relogic/common/rng.hpp",
    },
}

RULES = {
    "wall-clock": re.compile(
        r"(?:std::)?chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
        r"|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|\blocaltime(?:_r)?\s*\("
        r"|\bgmtime(?:_r)?\s*\("
        r"|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    ),
    "rand": re.compile(
        r"std::random_device"
        r"|(?<![\w:.>])s?rand\s*\("
        r"|std::mt19937"
        r"|\w+_distribution\s*<"
    ),
    "pointer-format": re.compile(
        r"%p\b"
        r"|<<\s*\(\s*(?:const\s+)?void\s*\*\s*\)"
        r"|<<\s*static_cast<\s*(?:const\s+)?void\s*\*\s*>"
    ),
}

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s+(\w+)\s*[;{=]"
)
RANGE_FOR = re.compile(
    r"\bfor\s*\([^;:)]*:\s*(?:\w+(?:\.|->))*(\w+)\s*\)"
)
# A function definition heading (qualified method or free function). Tracked
# per line; the most recent match names the enclosing function well enough
# for the export-path heuristic.
FUNC_DEF = re.compile(
    r"(?:^|\s)((?:~?\w+::)+~?\w+|\w+)\s*\([^;]*$|"
    r"(?:^|\s)((?:~?\w+::)+~?\w+|\w+)\s*\([^;()]*\)\s*(?:const\s*)?(?:noexcept\s*)?{"
)
EXPORT_FILE = re.compile(r"(?:^|/)obs/|telemetry|json|export")
EXPORT_FUNC = re.compile(
    r"to_json|to_string|export|dump|render|write_json|print", re.IGNORECASE
)
ALLOW = re.compile(r"//\s*lint-allow\(([\w-]+)\)")


def strip_block_comments(lines):
    """Blanks the interior of /* */ comments, preserving line count."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                start = line.find("/*", i)
                # Ignore /* that sits inside a // comment.
                slashes = line.find("//", i)
                if start < 0 or (0 <= slashes < start):
                    result.append(line[i:])
                    break
                result.append(line[i:start])
                in_block = True
                i = start + 2
        out.append("".join(result))
    return out


def collect_unordered_names(files):
    names = set()
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for m in UNORDERED_DECL.finditer(text):
            names.add(m.group(1))
    return names


def scan_file(path, rel, unordered_names):
    """Returns a list of (rel, line_no, rule, excerpt) violations."""
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    lines = strip_block_comments(raw)

    violations = []
    allowed_next = set()   # rules allowed by a directive on the previous line
    current_func = ""
    export_file = bool(EXPORT_FILE.search(rel))

    for no, line in enumerate(lines, start=1):
        allowed = set(allowed_next)
        allowed_next = set()
        comment = line.find("//")
        code = line if comment < 0 else line[:comment]
        for m in ALLOW.finditer(line):
            allowed.add(m.group(1))
            allowed_next.add(m.group(1))

        fm = FUNC_DEF.search(code)
        if fm:
            name = fm.group(1) or fm.group(2)
            # Control-flow keywords match the pattern shape, and a
            # std::-qualified name is always a *call* spilling onto the next
            # line (std functions are never defined here) — skip both.
            if name.startswith("std::"):
                name = ""
            if name and name not in ("if", "for", "while", "switch",
                                     "return", "sizeof", "catch", "defined"):
                current_func = name

        def hit(rule, text=code):
            if rule in allowed:
                return
            if rel in BUILTIN_ALLOW.get(rule, ()):
                return
            violations.append((rel, no, rule, text.strip()[:90]))

        for rule in ("wall-clock", "rand"):
            if RULES[rule].search(code):
                hit(rule)
        # %p lives inside string literals, so match before the // cut only.
        if RULES["pointer-format"].search(code):
            hit("pointer-format")

        rf = RANGE_FOR.search(code)
        if rf and rf.group(1) in unordered_names:
            if export_file or EXPORT_FUNC.search(current_func):
                hit("unordered-iteration")
    return violations


def gather(root):
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "lint_fixtures")
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                files.append(os.path.join(dirpath, name))
    return files


def run(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
        else:
            files.extend(gather(root))
    unordered_names = collect_unordered_names(files)
    violations = []
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        violations.extend(scan_file(path, rel, unordered_names))
    return files, violations


# ---- self-test --------------------------------------------------------------
# The fixture files plant one violation per (file, line, rule) listed here;
# everything in clean.cpp and allowed.cpp must pass. The self-test fails on
# any difference in either direction, so a regex regression that goes blind
# OR trigger-happy turns the CI step red.
EXPECTED = {
    ("tools/lint_fixtures/planted.cpp", 9, "wall-clock"),
    ("tools/lint_fixtures/planted.cpp", 12, "wall-clock"),
    ("tools/lint_fixtures/planted.cpp", 15, "wall-clock"),
    ("tools/lint_fixtures/planted.cpp", 19, "rand"),
    ("tools/lint_fixtures/planted.cpp", 21, "rand"),
    ("tools/lint_fixtures/planted.cpp", 23, "rand"),
    ("tools/lint_fixtures/planted.cpp", 28, "pointer-format"),
    ("tools/lint_fixtures/planted.cpp", 31, "pointer-format"),
    ("tools/lint_fixtures/planted.cpp", 39, "unordered-iteration"),
    ("tools/lint_fixtures/planted_export.cpp", 10, "unordered-iteration"),
}


def self_test():
    fixtures = os.path.join(REPO_ROOT, "tools", "lint_fixtures")
    files = [os.path.join(fixtures, f) for f in sorted(os.listdir(fixtures))
             if f.endswith(SOURCE_EXTS)]
    unordered_names = collect_unordered_names(files)
    got = set()
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        for v in scan_file(path, rel, unordered_names):
            got.add((v[0], v[1], v[2]))
    missing = EXPECTED - got
    surplus = got - EXPECTED
    for item in sorted(missing):
        print(f"self-test FAIL: expected violation not reported: {item}")
    for item in sorted(surplus):
        print(f"self-test FAIL: unexpected violation reported: {item}")
    if missing or surplus:
        return 1
    print(f"self-test ok: {len(EXPECTED)} planted violations caught, "
          f"clean and lint-allow fixtures quiet")
    return 0


def main(argv):
    args = argv[1:]
    if args and args[0] in ("-h", "--help"):
        sys.stderr.write(__doc__)
        return 2
    if args and args[0] == "--self-test":
        return self_test()
    roots = args or [os.path.join(REPO_ROOT, "src")]
    files, violations = run(roots)
    for rel, no, rule, excerpt in sorted(violations):
        print(f"{rel}:{no}: [{rule}] {excerpt}")
    if violations:
        print(f"FAIL: {len(violations)} determinism-lint violation(s) "
              f"in {len(files)} files")
        return 1
    rules = sorted(set(RULES) | {"unordered-iteration"})
    print(f"ok: {len(files)} files clean ({', '.join(rules)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
